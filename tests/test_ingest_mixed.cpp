// End-to-end coverage for the mmap + arena + mixed-parallel ingestion
// architecture:
//   - from_file_mmap and from_file produce byte-identical ReadResults,
//   - read_trace_buffers_parallel (one work queue of (file, chunk)
//     tasks) matches the sequential reader file by file,
//   - event_log_from_files: EventLog owns the storage its events view
//     into (valid after every intermediate is gone, including through
//     derived logs), and reader warnings surface via
//     EventLog::warnings() ordered by file then line,
//   - error propagation is deterministic (first path in input order).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "iosim/ior.hpp"
#include "model/from_strace.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"
#include "support/timeparse.hpp"

namespace st {
namespace {

namespace fs = std::filesystem;

std::string ts(Micros t) { return format_time_of_day(t); }

/// A trace body with reads, opens, cross-line resume pairs and — when
/// `with_noise` — lines that provoke reader warnings.
std::string make_trace(std::size_t lines, bool with_noise, std::uint64_t pid_base = 7) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    const std::string pid = std::to_string(pid_base + i % 2);
    switch (i % 5) {
      case 0:
        text += pid + "  " + ts(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += pid + "  " + ts(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += pid + "  " + ts(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        if (with_noise && i % 15 == 3) {
          text += pid + "  " + ts(t) + " not_a_call_line\n";
        } else {
          text += pid + "  " + ts(t) + " read(3</p/data/f>, <unfinished ...>\n";
        }
        break;
      default:
        text += pid + "  " + ts(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

class TempTraceDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_ingest_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  fs::path dir_;
};

void expect_same_result(const strace::ReadResult& a, const strace::ReadResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(strace::format_record(a.records[i]), strace::format_record(b.records[i]))
        << "record " << i;
  }
  EXPECT_EQ(a.warnings, b.warnings);
}

// ---- mmap vs read ------------------------------------------------------

using MmapVsRead = TempTraceDir;

TEST_F(MmapVsRead, ByteIdenticalReadResults) {
  const auto path = write_file("a_host1_1.st", make_trace(400, /*with_noise=*/true));
  const auto via_read = strace::read_trace_buffer(strace::TraceBuffer::from_file(path));
  const auto via_mmap = strace::read_trace_buffer(strace::TraceBuffer::from_file_mmap(path));
  EXPECT_EQ(via_read.buffer->text(), via_mmap.buffer->text());
  expect_same_result(via_read, via_mmap);
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(via_mmap.buffer->is_mapped());
  EXPECT_FALSE(via_read.buffer->is_mapped());
#endif
}

TEST_F(MmapVsRead, EmptyFile) {
  const auto path = write_file("a_host1_2.st", "");
  const auto buffer = strace::TraceBuffer::from_file_mmap(path);
  EXPECT_TRUE(buffer->text().empty());
  const auto result = strace::read_trace_buffer(buffer);
  EXPECT_TRUE(result.records.empty());
  EXPECT_TRUE(result.warnings.empty());
}

TEST_F(MmapVsRead, MissingFileThrows) {
  EXPECT_THROW((void)strace::TraceBuffer::from_file_mmap((dir_ / "nope.st").string()),
               IoError);
}

// ---- mixed parallelism -------------------------------------------------

using MixedParallel = TempTraceDir;

TEST_F(MixedParallel, OneBigPlusManySmallMatchesSequential) {
  std::vector<std::string> paths;
  paths.push_back(write_file("big_host1_1.st", make_trace(2000, true)));
  for (int i = 0; i < 6; ++i) {
    paths.push_back(write_file("small_host1_" + std::to_string(i + 2) + ".st",
                               make_trace(40 + static_cast<std::size_t>(i), true,
                                          static_cast<std::uint64_t>(100 + i))));
  }

  strace::ParallelReadOptions opts;
  opts.threads = 3;
  opts.min_chunk_bytes = 256;  // force many chunks per file
  const auto mixed = strace::read_trace_files_mixed(paths, opts);
  ASSERT_EQ(mixed.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto seq = strace::read_trace_file(paths[i]);
    expect_same_result(seq, mixed[i]);
  }
}

TEST_F(MixedParallel, EventLogMatchesPerFileSequentialBuild) {
  std::vector<std::string> paths;
  paths.push_back(write_file("big_nodeA_9001.st", make_trace(1200, true)));
  paths.push_back(write_file("s1_nodeB_9002.st", make_trace(55, true, 50)));
  paths.push_back(write_file("s2_nodeA_9003.st", make_trace(70, false, 60)));

  const auto log = model::event_log_from_files(paths, /*threads=*/4);

  // Reference: one file at a time through the sequential reader.
  model::EventLog ref;
  for (const auto& p : paths) {
    const auto id = strace::parse_trace_filename(p);
    ASSERT_TRUE(id);
    const auto result = strace::read_trace_file(p);
    ref.add_case(model::case_from_records(*id, result.records, ref.arena()));
    ref.adopt(result.buffer);
  }

  ASSERT_EQ(log.case_count(), ref.case_count());
  for (std::size_t c = 0; c < log.case_count(); ++c) {
    const auto& a = log.cases()[c];
    const auto& b = ref.cases()[c];
    ASSERT_EQ(a.id(), b.id());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST_F(MixedParallel, WarningsOrderedByFileThenLine) {
  std::vector<std::string> paths = {
      write_file("w1_host1_1.st", make_trace(40, true)),
      write_file("clean_host1_2.st", make_trace(20, false, 30)),
      write_file("w2_host1_3.st", "1  10:00:00.000001 garbage\n" + make_trace(40, true, 40)),
  };
  const auto log = model::event_log_from_files(paths, 2);
  ASSERT_FALSE(log.warnings().empty());

  // Every warning is "<path>: line N: ..."; file groups appear in input
  // order and line numbers ascend within a group.
  std::size_t file_idx = 0;
  std::size_t last_line = 0;
  for (const auto& w : log.warnings()) {
    while (file_idx < paths.size() && w.rfind(paths[file_idx] + ": ", 0) != 0) {
      ++file_idx;
      last_line = 0;
    }
    ASSERT_LT(file_idx, paths.size()) << "warning out of file order: " << w;
    const std::string rest = w.substr(paths[file_idx].size() + 2);
    if (rest.rfind("line ", 0) == 0) {
      // Line-anchored warnings ascend, and never follow the file's
      // "never resumed" tail warnings.
      ASSERT_NE(last_line, static_cast<std::size_t>(-1)) << w;
      const std::size_t line = std::stoull(rest.substr(5));
      EXPECT_GE(line, last_line) << w;
      last_line = line;
    } else {
      ASSERT_EQ(rest.rfind("unfinished call never resumed", 0), 0u) << w;
      last_line = static_cast<std::size_t>(-1);
    }
  }
  // The first bad file really is the first group.
  EXPECT_EQ(log.warnings().front().rfind(paths[0] + ": ", 0), 0u);
  // Derived logs do not inherit ingestion warnings.
  EXPECT_TRUE(log.filter_fp("/p").warnings().empty());
}

TEST_F(MixedParallel, ParallelConversionIdenticalToSingleWorker) {
  // The record -> Case conversion fans out on the pool; everything
  // observable — case order, events, warning strings and their order —
  // must be byte-identical to a 1-worker build.
  std::vector<std::string> paths;
  paths.push_back(write_file("big_nodeA_1.st", make_trace(900, true)));
  for (int i = 0; i < 5; ++i) {
    paths.push_back(write_file("s_nodeB_" + std::to_string(i + 2) + ".st",
                               make_trace(35 + static_cast<std::size_t>(i), true,
                                          static_cast<std::uint64_t>(200 + i))));
  }
  const auto serial = model::event_log_from_files(paths, /*threads=*/1);
  const auto parallel = model::event_log_from_files(paths, /*threads=*/4);

  ASSERT_EQ(parallel.case_count(), serial.case_count());
  for (std::size_t c = 0; c < serial.case_count(); ++c) {
    const auto& a = serial.cases()[c];
    const auto& b = parallel.cases()[c];
    ASSERT_EQ(a.id(), b.id());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a.events()[i], b.events()[i]);
  }
  EXPECT_EQ(parallel.warnings(), serial.warnings());
}

TEST_F(MixedParallel, IdenticalConsecutiveWarningsAreDeduped) {
  // A file whose only defect is one never-resumed unfinished call
  // produces exactly one warning; listing the file twice would repeat
  // it back to back — the builder collapses the run.
  const auto path = write_file(
      "dup_host1_1.st", "7  10:00:00.000000 read(3</p/f>, <unfinished ...>\n");
  const auto once = model::event_log_from_files({path});
  ASSERT_EQ(once.warnings().size(), 1u);
  EXPECT_EQ(once.warnings()[0], path + ": unfinished call never resumed: pid 7 read");

  const auto twice = model::event_log_from_files({path, path});
  EXPECT_EQ(twice.warnings(), once.warnings());

  // Distinct consecutive warnings are all kept.
  const auto other = write_file(
      "dup_host1_2.st", "9  10:00:00.000000 read(3</p/f>, <unfinished ...>\n");
  const auto mixed = model::event_log_from_files({path, other});
  EXPECT_EQ(mixed.warnings().size(), 2u);
}

TEST_F(MixedParallel, BadFileNameThrowsFirstInInputOrder) {
  const auto good = write_file("ok_host1_1.st", make_trace(10, false));
  const auto bad1 = write_file("nounderscore.st", make_trace(10, false));
  const auto bad2 = write_file("alsobad.st", make_trace(10, false));
  try {
    (void)model::event_log_from_files({good, bad1, bad2});
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nounderscore"), std::string::npos) << e.what();
  }
}

// ---- EventLog ownership ------------------------------------------------

using EventLogLifetime = TempTraceDir;

TEST_F(EventLogLifetime, ViewsValidAfterAllIntermediatesDie) {
  const auto path = write_file("life_host1_7.st", make_trace(250, true));
  model::EventLog log = model::event_log_from_files({path});
  // Overwrite the file on disk: the log must not notice (mmap'd pages
  // are MAP_PRIVATE; the buffer object is owned by the log).
  write_file("life_host1_7.st", std::string(4096, 'X'));

  ASSERT_EQ(log.case_count(), 1u);
  const auto& c = log.cases()[0];
  EXPECT_EQ(c.id().cid, "life");
  ASSERT_GT(c.size(), 0u);
  for (const auto& e : c.events()) {
    EXPECT_EQ(e.cid, "life");
    EXPECT_EQ(e.host, "host1");
    EXPECT_FALSE(e.call.empty());
  }
}

TEST_F(EventLogLifetime, DerivedLogOutlivesSource) {
  const auto path = write_file("d_host1_8.st", make_trace(300, false));
  auto source = std::make_unique<model::EventLog>(model::event_log_from_files({path}));
  const std::size_t total = source->total_events();
  ASSERT_GT(total, 0u);

  model::EventLog reads = source->filter_events(
      [](const model::Event& e) { return e.call == "read"; });
  auto [scratch, rest] = reads.partition([](const model::Case&) { return true; });
  source.reset();  // the only named owner dies; adopted owners keep storage alive

  ASSERT_EQ(scratch.case_count(), 1u);
  for (const auto& e : scratch.cases()[0].events()) {
    EXPECT_EQ(e.call, "read");
    EXPECT_EQ(e.fp, "/p/data/f");
    EXPECT_EQ(e.cid, "d");
  }
}

TEST(SimulatedLogLifetime, EventLogOutlivesTraceSet) {
  iosim::IorOptions opt;
  opt.num_ranks = 4;
  opt.ranks_per_node = 2;
  opt.transfer_size = 1 << 18;
  opt.block_size = 1 << 20;
  opt.segments = 1;
  model::EventLog log;
  {
    const auto traces = iosim::run_ior(opt);
    log = traces.to_event_log();
  }  // TraceSet (and its RankTrace records) destroyed here
  ASSERT_GT(log.total_events(), 0u);
  bool saw_scratch = false;
  for (const auto& c : log.cases()) {
    for (const auto& e : c.events()) {
      EXPECT_FALSE(e.call.empty());
      if (e.fp == "/p/scratch/ssf/test") saw_scratch = true;
    }
  }
  EXPECT_TRUE(saw_scratch);
}

}  // namespace
}  // namespace st
