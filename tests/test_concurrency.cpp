#include "dfg/concurrency.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace st::dfg {
namespace {

TEST(MaxConcurrency, EmptyIsZero) { EXPECT_EQ(get_max_concurrency({}), 0u); }

TEST(MaxConcurrency, SingleInterval) {
  EXPECT_EQ(get_max_concurrency({{0, 10}}), 1u);
}

TEST(MaxConcurrency, DisjointIntervals) {
  EXPECT_EQ(get_max_concurrency({{0, 10}, {20, 30}, {40, 50}}), 1u);
}

TEST(MaxConcurrency, TwoOverlapping) {
  EXPECT_EQ(get_max_concurrency({{0, 10}, {5, 15}}), 2u);
}

TEST(MaxConcurrency, TouchingIntervalsAreNotConcurrent) {
  // "end time of the first > start time of the last" is strict.
  EXPECT_EQ(get_max_concurrency({{0, 10}, {10, 20}}), 1u);
}

TEST(MaxConcurrency, NestedIntervals) {
  EXPECT_EQ(get_max_concurrency({{0, 100}, {10, 20}, {30, 40}}), 2u);
}

TEST(MaxConcurrency, TripleOverlapAtPoint) {
  EXPECT_EQ(get_max_concurrency({{0, 10}, {2, 12}, {4, 14}}), 3u);
}

TEST(MaxConcurrency, Fig5Shape) {
  // Fig. 5: three ranks' read:/usr/lib bursts, pairwise-overlapping
  // neighbours only -> max concurrency 2 (the paper's stated value).
  const std::vector<Interval> t = {
      {0, 250},    // b9157
      {200, 450},  // b9158
      {460, 700},  // b9160
  };
  EXPECT_EQ(get_max_concurrency(t), 2u);
}

TEST(MaxConcurrency, ZeroLengthIntervalsNeverOverlap) {
  EXPECT_EQ(get_max_concurrency({{5, 5}, {5, 5}}), 0u);
  EXPECT_EQ(get_max_concurrency({{0, 10}, {5, 5}}), 1u);
}

TEST(MaxConcurrency, UnsortedInputHandled) {
  EXPECT_EQ(get_max_concurrency({{40, 50}, {0, 45}, {42, 60}}), 3u);
}

TEST(MaxConcurrency, AllIdentical) {
  std::vector<Interval> v(7, Interval{3, 9});
  EXPECT_EQ(get_max_concurrency(v), 7u);
}

TEST(MaxConcurrency, StaircaseClosesBeforeReopening) {
  // Each interval ends exactly when two later ones begin; sweeps that
  // forget to pop closed intervals overcount here.
  EXPECT_EQ(get_max_concurrency({{0, 10}, {10, 20}, {10, 20}, {20, 30}}), 2u);
}

/// Brute-force reference: max over all interval starts of the number
/// of intervals strictly containing that start point.
std::size_t brute_force(const std::vector<Interval>& intervals) {
  std::size_t best = 0;
  for (const auto& probe : intervals) {
    if (probe.end <= probe.start) continue;
    std::size_t n = 0;
    for (const auto& other : intervals) {
      if (other.end <= other.start) continue;
      if (other.start <= probe.start && probe.start < other.end) ++n;
    }
    best = std::max(best, n);
  }
  return best;
}

class MaxConcurrencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxConcurrencyProperty, MatchesBruteForceOnRandomIntervals) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<Interval> intervals;
    const std::size_t n = 1 + rng.below(40);
    for (std::size_t i = 0; i < n; ++i) {
      const Micros start = static_cast<Micros>(rng.below(200));
      const Micros len = static_cast<Micros>(rng.below(50));
      intervals.push_back({start, start + len});
    }
    EXPECT_EQ(get_max_concurrency(intervals), brute_force(intervals));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxConcurrencyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace st::dfg
