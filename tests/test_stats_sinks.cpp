// ISSUE 7 acceptance: the statistics sinks are BIT-identical to their
// staged compute() counterparts — doubles compared by bit pattern, not
// approximately — at any worker count and any queue capacity, because
//   - IoStatistics::Partial::merge is pure concatenation (no FP ops),
//   - every double is summed once, in finalize(), through the
//     fixed-shape pairwise tree (deterministic_pairwise_sum),
//   - EdgeStatistics partials are all-integer.
// Plus the satellite regression: EdgeStatistics::slowest_edge breaks
// mean-gap ties toward the lexicographically smallest edge on every
// path.
#include "pipeline/sink.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dfg/edge_stats.hpp"
#include "dfg/stats.hpp"
#include "model/from_strace.hpp"
#include "parallel/thread_pool.hpp"
#include "testing_corpus.hpp"
#include "testing_util.hpp"

namespace st {
namespace {

using testing::ev;
using testing::expect_same_io_stats;
using testing::make_case;

class StatsSinks : public testing::CorpusTest {
 protected:
  StatsSinks() : CorpusTest("st_stats_sinks") {}
};

// ---- the summation tree itself -----------------------------------------

TEST(DeterministicPairwiseSum, EdgeCasesAndShape) {
  EXPECT_EQ(dfg::deterministic_pairwise_sum({}), 0.0);

  const double one[] = {3.25};
  EXPECT_EQ(dfg::deterministic_pairwise_sum(one), 3.25);

  // Values whose sum depends on association order (1e16 + 1 + -1e16 is
  // 1.0 or 0.0 depending on grouping) make the shape observable.
  // half = n/2, so
  //   n=3: x0 + (x1 + x2)
  //   n=5: (x0 + x1) + (x2 + (x3 + x4))
  const double x3[] = {1e16, 1.0, -1e16};
  EXPECT_EQ(std::bit_cast<std::uint64_t>(dfg::deterministic_pairwise_sum(x3)),
            std::bit_cast<std::uint64_t>(x3[0] + (x3[1] + x3[2])));

  const double x5[] = {1e16, 1.0, -1e16, 0.5, 1e-3};
  EXPECT_EQ(std::bit_cast<std::uint64_t>(dfg::deterministic_pairwise_sum(x5)),
            std::bit_cast<std::uint64_t>((x5[0] + x5[1]) + (x5[2] + (x5[3] + x5[4]))));

  // Same inputs, same bits, every time (shape is a function of n alone).
  EXPECT_EQ(std::bit_cast<std::uint64_t>(dfg::deterministic_pairwise_sum(x5)),
            std::bit_cast<std::uint64_t>(dfg::deterministic_pairwise_sum(x5)));
}

// ---- sink output vs staged compute, exact ------------------------------

TEST_F(StatsSinks, SinksMatchComputeBitwiseAt1247Workers) {
  const auto paths = make_corpus();
  const auto f = model::Mapping::call_top_dirs(2);

  const auto reference = model::event_log_from_files(paths, 1);
  const auto ref_io = dfg::IoStatistics::compute(reference, f);
  const auto ref_edges = dfg::EdgeStatistics::compute(reference, f);
  ASSERT_FALSE(ref_io.per_activity().empty());
  ASSERT_FALSE(ref_edges.per_edge().empty());

  for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(workers);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;  // force many chunks per file

    pipeline::IoStatsSink io_sink(f);
    pipeline::EdgeStatsSink edge_sink(f);
    (void)pipeline::run(paths, pool, {&io_sink, &edge_sink}, opts);

    expect_same_io_stats(io_sink.finalize(), ref_io);
    EXPECT_EQ(edge_sink.finalize().per_edge(), ref_edges.per_edge()) << workers;
  }
}

TEST_F(StatsSinks, QueueCapacityOneIsStillBitwiseIdentical) {
  const auto paths = make_corpus();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto reference = model::event_log_from_files(paths, 1);
  const auto ref_io = dfg::IoStatistics::compute(reference, f);
  const auto ref_edges = dfg::EdgeStatistics::compute(reference, f);

  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    pipeline::StreamOptions opts;
    opts.min_chunk_bytes = 512;
    opts.queue_capacity = 1;  // maximal backpressure degeneration

    pipeline::IoStatsSink io_sink(f);
    pipeline::EdgeStatsSink edge_sink(f);
    (void)pipeline::run(paths, pool, {&io_sink, &edge_sink}, opts);

    expect_same_io_stats(io_sink.finalize(), ref_io);
    EXPECT_EQ(edge_sink.finalize().per_edge(), ref_edges.per_edge()) << workers;
  }
}

TEST_F(StatsSinks, PartialTimelineMatchesStaticTimeline) {
  // Partial::timeline must reconstruct exactly what the static
  // timeline builds from a materialized log — for every activity.
  const auto paths = make_corpus();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto reference = model::event_log_from_files(paths, 1);

  ThreadPool pool(3);
  pipeline::IoStatsSink io_sink(f);
  (void)pipeline::run(paths, pool, {&io_sink});
  const dfg::IoStatistics::Partial partial = io_sink.take_partial();

  const auto stats = dfg::IoStatistics::compute(reference, f);
  ASSERT_FALSE(stats.per_activity().empty());
  for (const auto& [activity, stat] : stats.per_activity()) {
    const auto from_partial = partial.timeline(activity);
    const auto from_log = dfg::IoStatistics::timeline(reference, f, activity);
    ASSERT_EQ(from_partial.size(), from_log.size()) << activity;
    for (std::size_t i = 0; i < from_partial.size(); ++i) {
      EXPECT_EQ(from_partial[i].case_id, from_log[i].case_id) << activity << " entry " << i;
      EXPECT_EQ(from_partial[i].interval, from_log[i].interval) << activity << " entry " << i;
    }
  }
}

// ---- the monoid, hand-driven -------------------------------------------

/// Cases with rate-carrying events (size AND dur), so FP association
/// errors would show if merge did any arithmetic.
model::Case rated_case(const std::string& cid, std::uint64_t rid, Micros base) {
  return make_case(cid, rid,
                   {ev("read", "/p/data/f", base, 7, 1000),
                    ev("write", "/p/data/f", base + 10, 3, 999),
                    ev("read", "/p/data/f", base + 20, 11, 123457)});
}

TEST(IoStatsPartial, MergeGroupingCannotChangeBits) {
  const auto f = model::Mapping::call_only();
  const model::Case c0 = rated_case("w0", 1, 0);
  const model::Case c1 = rated_case("w1", 2, 500);
  const model::Case c2 = rated_case("w2", 3, 1000);

  auto partial_of = [&](std::initializer_list<const model::Case*> cases) {
    dfg::IoStatistics::Partial p;
    for (const model::Case* c : cases) p.add_case(*c, f);
    return p;
  };

  // ((c0 + c1) + c2)
  dfg::IoStatistics::Partial left = partial_of({&c0, &c1});
  left.merge(partial_of({&c2}));
  // (c0 + (c1 + c2))
  dfg::IoStatistics::Partial tail = partial_of({&c1});
  tail.merge(partial_of({&c2}));
  dfg::IoStatistics::Partial right = partial_of({&c0});
  right.merge(std::move(tail));
  // the serial walk
  const dfg::IoStatistics::Partial serial = partial_of({&c0, &c1, &c2});

  EXPECT_EQ(left, serial);
  EXPECT_EQ(right, serial);
  expect_same_io_stats(left.finalize(), serial.finalize());
  expect_same_io_stats(right.finalize(), serial.finalize());
}

TEST(EdgeStatsPartial, MergeGroupingCannotChangeMaps) {
  const auto f = model::Mapping::call_only();
  const model::Case c0 = rated_case("w0", 1, 0);
  const model::Case c1 = rated_case("w1", 2, 500);

  dfg::EdgeStatistics::Partial merged;
  {
    dfg::EdgeStatistics::Partial a;
    a.add_case(c0, f);
    dfg::EdgeStatistics::Partial b;
    b.add_case(c1, f);
    merged = std::move(a);
    merged.merge(std::move(b));
  }
  dfg::EdgeStatistics::Partial serial;
  serial.add_case(c0, f);
  serial.add_case(c1, f);
  EXPECT_EQ(merged, serial);
  EXPECT_EQ(merged.finalize().per_edge(), serial.finalize().per_edge());
}

// ---- slowest_edge tie-break regression (ISSUE 7 satellite) -------------

TEST(EdgeStats, SlowestEdgeTieBreaksLexicographically) {
  // Two edges with the SAME mean gap (10): (a,b) and (a,c). The pinned
  // contract picks the lexicographically smallest — (a,b) — on every
  // path, so sharded and in-process reports render identical labels.
  const auto f = model::Mapping::call_only();
  model::EventLog log;
  log.add_case(make_case("r1", 1, {ev("a", "", 0, 10), ev("b", "", 20, 5)}));
  log.add_case(make_case("r2", 2, {ev("a", "", 0, 10), ev("c", "", 20, 5)}));
  // A third, faster edge that must never win.
  log.add_case(make_case("r3", 3, {ev("b", "", 0, 10), ev("c", "", 11, 5)}));

  const auto stats = dfg::EdgeStatistics::compute(log, f);
  ASSERT_EQ(stats.find("a", "b")->mean_gap(), stats.find("a", "c")->mean_gap());
  const auto* slowest = stats.slowest_edge();
  ASSERT_NE(slowest, nullptr);
  EXPECT_EQ(slowest->first, "a");
  EXPECT_EQ(slowest->second, "b");

  // Reversed case order cannot flip the winner (the map is ordered,
  // selection uses strict >).
  model::EventLog reversed;
  reversed.add_case(make_case("r2", 2, {ev("a", "", 0, 10), ev("c", "", 20, 5)}));
  reversed.add_case(make_case("r1", 1, {ev("a", "", 0, 10), ev("b", "", 20, 5)}));
  const auto rstats = dfg::EdgeStatistics::compute(reversed, f);
  const auto* rslowest = rstats.slowest_edge();
  ASSERT_NE(rslowest, nullptr);
  EXPECT_EQ(*rslowest, *slowest);
}

}  // namespace
}  // namespace st
