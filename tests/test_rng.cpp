#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace st {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro, BelowZeroIsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro, BelowOneIsZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Xoshiro, NormalMeanAndSpread) {
  Xoshiro256 rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro, LognormalMedianApprox) {
  Xoshiro256 rng(17);
  const int n = 50001;
  std::vector<double> v(n);
  for (auto& x : v) x = rng.lognormal(100.0, 0.1);
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[n / 2], 100.0, 2.0);
  for (const double x : v) EXPECT_GT(x, 0.0);
}

TEST(Xoshiro, LognormalZeroSigmaIsExact) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(rng.lognormal(42.0, 0.0), 42.0);
}

}  // namespace
}  // namespace st
