#include "dfg/profile.hpp"

#include <gtest/gtest.h>

#include "iosim/campaign.hpp"
#include "support/errors.hpp"
#include "testing_util.hpp"

namespace st::dfg {
namespace {

using testing::ev;
using testing::make_case;

TEST(Percentile, NearestRankKnownValues) {
  const std::vector<Micros> sorted = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(percentile_sorted(sorted, 50), 50);   // ceil(0.5*10)=5th -> 50
  EXPECT_EQ(percentile_sorted(sorted, 90), 90);
  EXPECT_EQ(percentile_sorted(sorted, 99), 100);  // ceil(9.9)=10th
  EXPECT_EQ(percentile_sorted(sorted, 0), 10);
  EXPECT_EQ(percentile_sorted(sorted, 100), 100);
  EXPECT_EQ(percentile_sorted(sorted, 10), 10);   // ceil(1)=1st
  EXPECT_EQ(percentile_sorted(sorted, 11), 20);   // ceil(1.1)=2nd
}

TEST(Percentile, SingleSample) {
  EXPECT_EQ(percentile_sorted({42}, 50), 42);
  EXPECT_EQ(percentile_sorted({42}, 99), 42);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW((void)percentile_sorted({}, 50), LogicError);
}

TEST(Profiles, PerActivityDistribution) {
  model::EventLog log;
  std::vector<model::Event> events;
  for (int i = 1; i <= 100; ++i) {
    events.push_back(ev("read", "/f", i * 1000, i));  // durations 1..100
  }
  events.push_back(ev("write", "/f", 999999, 7));
  log.add_case(make_case("p", 1, std::move(events)));

  const auto profiles = DurationProfiles::compute(log, model::Mapping::call_only());
  const auto* read = profiles.find("read");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->samples, 100u);
  EXPECT_EQ(read->min, 1);
  EXPECT_EQ(read->p50, 50);
  EXPECT_EQ(read->p90, 90);
  EXPECT_EQ(read->p99, 99);
  EXPECT_EQ(read->max, 100);
  EXPECT_DOUBLE_EQ(read->tail_ratio(), 2.0);

  const auto* write = profiles.find("write");
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(write->samples, 1u);
  EXPECT_EQ(write->p50, 7);
}

TEST(Profiles, PartialMappingSkips) {
  model::EventLog log;
  log.add_case(make_case("p", 1, {ev("read", "/keep", 0, 5), ev("read", "/drop", 10, 500)}));
  const auto f = model::Mapping::call_only().filtered("k", [](const model::Event& e) {
    return e.fp == "/keep";
  });
  const auto profiles = DurationProfiles::compute(log, f);
  EXPECT_EQ(profiles.find("read")->max, 5);
}

TEST(Profiles, EmptyLog) {
  const auto profiles =
      DurationProfiles::compute(model::EventLog{}, model::Mapping::call_only());
  EXPECT_TRUE(profiles.per_activity().empty());
  EXPECT_EQ(profiles.find("read"), nullptr);
}

TEST(Profiles, RenderTable) {
  model::EventLog log;
  log.add_case(make_case("p", 1, {ev("read", "/f", 0, 10), ev("read", "/f", 20, 30)}));
  const auto profiles = DurationProfiles::compute(log, model::Mapping::call_only());
  const auto text = profiles.render();
  EXPECT_NE(text.find("read"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_EQ(text, profiles.render());
}

// The convoy skew the module exists to expose: SSF openat durations
// ramp linearly, so max/p50 is large; FPP openats are flat.
TEST(Profiles, SsfOpenConvoySkewVisible) {
  const auto log = iosim::ssf_fpp_campaign(iosim::CampaignScale::small());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
  const auto profiles = DurationProfiles::compute(log, f);
  const auto* ssf_open = profiles.find("openat\n$SCRATCH/ssf");
  const auto* fpp_open = profiles.find("openat\n$SCRATCH/fpp");
  ASSERT_NE(ssf_open, nullptr);
  ASSERT_NE(fpp_open, nullptr);
  EXPECT_GT(ssf_open->tail_ratio(), 1.5);  // convoy ramp
  EXPECT_GT(ssf_open->max, 10 * fpp_open->max);
}

}  // namespace
}  // namespace st::dfg
