#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "support/errors.hpp"

namespace st::des {
namespace {

TEST(Simulator, DelayAdvancesVirtualTime) {
  Simulator sim;
  SimTime observed = -1;
  auto proc = [](Simulator& s, SimTime& out) -> Proc<> {
    co_await s.delay(250);
    out = s.now();
  };
  sim.spawn(proc(sim, observed));
  sim.run();
  EXPECT_EQ(observed, 250);
}

TEST(Simulator, SequentialDelaysAccumulate) {
  Simulator sim;
  std::vector<SimTime> ticks;
  auto proc = [](Simulator& s, std::vector<SimTime>& out) -> Proc<> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(10);
      out.push_back(s.now());
    }
  };
  sim.spawn(proc(sim, ticks));
  sim.run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Simulator, InterleavesProcessesByTime) {
  Simulator sim;
  std::string order;
  auto proc = [](Simulator& s, std::string& out, char name, SimTime step) -> Proc<> {
    for (int i = 0; i < 2; ++i) {
      co_await s.delay(step);
      out.push_back(name);
    }
  };
  sim.spawn(proc(sim, order, 'a', 10));  // fires at 10, 20
  sim.spawn(proc(sim, order, 'b', 15));  // fires at 15, 30
  sim.run();
  EXPECT_EQ(order, "abab");
}

TEST(Simulator, SameTimeResumesInSpawnOrder) {
  Simulator sim;
  std::string order;
  auto proc = [](Simulator& s, std::string& out, char name) -> Proc<> {
    co_await s.delay(5);
    out.push_back(name);
  };
  sim.spawn(proc(sim, order, 'x'));
  sim.spawn(proc(sim, order, 'y'));
  sim.spawn(proc(sim, order, 'z'));
  sim.run();
  EXPECT_EQ(order, "xyz");
}

TEST(Simulator, NestedSubProcessReturnsValue) {
  Simulator sim;
  int result = 0;
  auto child = [](Simulator& s) -> Proc<int> {
    co_await s.delay(7);
    co_return 42;
  };
  auto parent = [](Simulator& s, int& out, auto& mk) -> Proc<> {
    out = co_await mk(s);
    out += static_cast<int>(s.now());
  };
  sim.spawn(parent(sim, result, child));
  sim.run();
  EXPECT_EQ(result, 49);
}

TEST(Simulator, ExceptionPropagatesThroughCoAwait) {
  Simulator sim;
  bool caught = false;
  auto child = [](Simulator& s) -> Proc<int> {
    co_await s.delay(1);
    throw LogicError("child failed");
  };
  auto parent = [](Simulator& s, bool& flag, auto& mk) -> Proc<> {
    try {
      (void)co_await mk(s);
    } catch (const LogicError&) {
      flag = true;
    }
  };
  sim.spawn(parent(sim, caught, child));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, RunReturnsFinalTime) {
  Simulator sim;
  auto proc = [](Simulator& s) -> Proc<> { co_await s.delay(123); };
  sim.spawn(proc(sim));
  EXPECT_EQ(sim.run(), 123);
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator sim;
  SimTime at = -1;
  auto proc = [](Simulator& s, SimTime& out) -> Proc<> {
    co_await s.delay(-50);
    out = s.now();
  };
  sim.spawn(proc(sim, at));
  sim.run();
  EXPECT_EQ(at, 0);
}

TEST(Resource, CapacityLimitsConcurrency) {
  Simulator sim;
  Resource res(sim, 2);
  std::vector<SimTime> start_times;
  auto worker = [](Simulator& s, Resource& r, std::vector<SimTime>& out) -> Proc<> {
    co_await r.acquire();
    out.push_back(s.now());
    co_await s.delay(100);
    r.release();
  };
  for (int i = 0; i < 4; ++i) sim.spawn(worker(sim, res, start_times));
  sim.run();
  // Two start immediately, two wait one service round.
  EXPECT_EQ(start_times, (std::vector<SimTime>{0, 0, 100, 100}));
}

TEST(Resource, FcfsOrder) {
  Simulator sim;
  Resource res(sim, 1);
  std::string order;
  auto worker = [](Simulator& s, Resource& r, std::string& out, char name,
                   SimTime arrival) -> Proc<> {
    co_await s.delay(arrival);
    co_await r.acquire();
    out.push_back(name);
    co_await s.delay(50);
    r.release();
  };
  sim.spawn(worker(sim, res, order, 'c', 3));
  sim.spawn(worker(sim, res, order, 'a', 1));
  sim.spawn(worker(sim, res, order, 'b', 2));
  sim.run();
  EXPECT_EQ(order, "abc");
}

TEST(Resource, QueueLengthObservable) {
  Simulator sim;
  Resource res(sim, 1);
  std::size_t peak_queue = 0;
  auto worker = [](Simulator& s, Resource& r, std::size_t& peak) -> Proc<> {
    co_await r.acquire();
    peak = std::max(peak, r.queue_length());
    co_await s.delay(10);
    r.release();
  };
  for (int i = 0; i < 5; ++i) sim.spawn(worker(sim, res, peak_queue));
  sim.run();
  // The first worker acquires before the other four queue up; the
  // longest queue (3) is observed by the second worker after one
  // service round has completed.
  EXPECT_EQ(peak_queue, 3u);
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Simulator sim;
  Barrier barrier(sim, 3);
  std::vector<SimTime> release_times;
  auto worker = [](Simulator& s, Barrier& b, std::vector<SimTime>& out,
                   SimTime arrival) -> Proc<> {
    co_await s.delay(arrival);
    co_await b.arrive();
    out.push_back(s.now());
  };
  sim.spawn(worker(sim, barrier, release_times, 10));
  sim.spawn(worker(sim, barrier, release_times, 20));
  sim.spawn(worker(sim, barrier, release_times, 30));
  sim.run();
  EXPECT_EQ(release_times, (std::vector<SimTime>{30, 30, 30}));
}

TEST(Barrier, CyclicReuse) {
  Simulator sim;
  Barrier barrier(sim, 2);
  std::vector<SimTime> times;
  auto worker = [](Simulator& s, Barrier& b, std::vector<SimTime>& out, SimTime step) -> Proc<> {
    co_await s.delay(step);
    co_await b.arrive();
    out.push_back(s.now());
    co_await s.delay(step);
    co_await b.arrive();
    out.push_back(s.now());
  };
  sim.spawn(worker(sim, barrier, times, 10));
  sim.spawn(worker(sim, barrier, times, 25));
  sim.run();
  // First rendezvous at 25, second when the slower finishes its second leg.
  EXPECT_EQ(times, (std::vector<SimTime>{25, 25, 50, 50}));
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    Resource res(sim, 2);
    std::vector<SimTime> log;
    auto worker = [](Simulator& s, Resource& r, std::vector<SimTime>& out, SimTime t) -> Proc<> {
      co_await s.delay(t);
      co_await r.acquire();
      out.push_back(s.now());
      co_await s.delay(t * 2);
      r.release();
    };
    for (SimTime t = 1; t <= 10; ++t) sim.spawn(worker(sim, res, log, t));
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(WaitGroup, JoinsAllChildren) {
  Simulator sim;
  WaitGroup wg(sim);
  std::vector<SimTime> finish_times;
  SimTime join_time = -1;
  auto child = [](Simulator& s, WaitGroup& w, std::vector<SimTime>& out, SimTime d) -> Proc<> {
    co_await s.delay(d);
    out.push_back(s.now());
    w.done();
  };
  auto parent = [](Simulator& s, WaitGroup& w, SimTime& out) -> Proc<> {
    co_await w.wait();
    out = s.now();
  };
  wg.add(3);
  sim.spawn(child(sim, wg, finish_times, 10));
  sim.spawn(child(sim, wg, finish_times, 30));
  sim.spawn(child(sim, wg, finish_times, 20));
  sim.spawn(parent(sim, wg, join_time));
  sim.run();
  EXPECT_EQ(join_time, 30);
  EXPECT_EQ(finish_times.size(), 3u);
  EXPECT_EQ(wg.pending(), 0u);
}

TEST(WaitGroup, WaitOnZeroCountIsImmediate) {
  Simulator sim;
  WaitGroup wg(sim);
  SimTime join_time = -1;
  auto parent = [](Simulator& s, WaitGroup& w, SimTime& out) -> Proc<> {
    co_await s.delay(5);
    co_await w.wait();  // nothing pending: no extra delay
    out = s.now();
  };
  sim.spawn(parent(sim, wg, join_time));
  sim.run();
  EXPECT_EQ(join_time, 5);
}

TEST(WaitGroup, DoneWithoutAddThrows) {
  Simulator sim;
  WaitGroup wg(sim);
  EXPECT_THROW(wg.done(), LogicError);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  auto proc = [](Simulator& s) -> Proc<> {
    co_await s.delay(100);
    // Manually scheduling before now must be rejected.
    EXPECT_THROW(s.schedule(std::noop_coroutine(), 50), LogicError);
  };
  sim.spawn(proc(sim));
  sim.run();
}

}  // namespace
}  // namespace st::des
