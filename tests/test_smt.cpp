// SMT / multi-process trace handling: the interleaved writer
// (<unfinished ...>/<... resumed> emission, Fig. 2c) and the
// threads_per_rank IOR mode, round-tripped through the parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "iosim/ior.hpp"
#include "model/from_strace.hpp"
#include "strace/filename.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"
#include "support/strings.hpp"

namespace st {
namespace {

strace::RawRecord rec(std::uint64_t pid, Micros start, Micros dur, const char* call,
                      const char* path, std::int64_t bytes) {
  static strace::StringArena arena;  // outlives every test's records
  strace::RawRecord r;
  r.pid = pid;
  r.timestamp = start;
  r.call = call;
  r.args = arena.concat({"3<", path, ">, \"\"..., ", std::to_string(bytes)});
  r.path = path;
  r.retval = bytes;
  r.duration = dur;
  r.requested = bytes;
  return r;
}

TEST(InterleavedWriter, NonOverlappingStaysComplete) {
  const std::vector<strace::RawRecord> records = {
      rec(1, 0, 10, "read", "/a", 100),
      rec(2, 50, 10, "read", "/b", 100),
  };
  const std::string text = strace::format_trace_interleaved(records);
  EXPECT_EQ(text.find("unfinished"), std::string::npos);
  EXPECT_EQ(split(text, '\n').size(), 3u);  // 2 lines + trailing empty
}

TEST(InterleavedWriter, OverlapProducesUnfinishedResumedPair) {
  const std::vector<strace::RawRecord> records = {
      rec(1, 0, 100, "read", "/a", 405),   // pid 1: [0, 100]
      rec(2, 50, 10, "write", "/b", 7),    // pid 2 starts inside
  };
  const std::string text = strace::format_trace_interleaved(records);
  EXPECT_NE(text.find("<unfinished ...>"), std::string::npos);
  EXPECT_NE(text.find("<... read resumed>"), std::string::npos);
  // Chronological line order: read-unfinished, write, read-resumed.
  const auto lines = split(text, '\n');
  EXPECT_NE(lines[0].find("read(3</a>"), std::string::npos);
  EXPECT_NE(lines[1].find("write"), std::string::npos);
  EXPECT_NE(lines[2].find("resumed"), std::string::npos);
}

TEST(InterleavedWriter, RoundTripsThroughReader) {
  const std::vector<strace::RawRecord> records = {
      rec(1, 0, 100, "read", "/a", 405),
      rec(2, 50, 30, "write", "/b", 7),     // fully inside pid 1's read
      rec(2, 200, 50, "read", "/c", 10),    // overlaps pid 1's second call
      rec(1, 220, 100, "write", "/d", 20),
  };
  const std::string text = strace::format_trace_interleaved(records);
  const auto result = strace::read_trace_text(text);
  EXPECT_TRUE(result.warnings.empty()) << text;
  ASSERT_EQ(result.records.size(), records.size());

  // Completion order differs from start order; match by (pid, call).
  for (const auto& original : records) {
    bool found = false;
    for (const auto& parsed : result.records) {
      if (parsed.pid == original.pid && parsed.call == original.call &&
          parsed.timestamp == original.timestamp) {
        EXPECT_EQ(parsed.duration, original.duration);
        EXPECT_EQ(parsed.retval, original.retval);
        EXPECT_EQ(parsed.path, original.path);
        found = true;
      }
    }
    EXPECT_TRUE(found) << original.call << " pid " << original.pid;
  }
}

TEST(InterleavedWriter, MutualOverlapSplitsBoth) {
  const std::vector<strace::RawRecord> records = {
      rec(1, 0, 100, "read", "/a", 1),    // [0,100]
      rec(2, 50, 100, "read", "/b", 2),   // [50,150] — A's end inside B
  };
  const std::string text = strace::format_trace_interleaved(records);
  // Both records split: two unfinished and two resumed lines.
  std::size_t unfinished = 0;
  std::size_t resumed = 0;
  for (const auto& line : split(text, '\n')) {
    if (line.find("unfinished") != std::string::npos) ++unfinished;
    if (line.find("resumed") != std::string::npos) ++resumed;
  }
  EXPECT_EQ(unfinished, 2u);
  EXPECT_EQ(resumed, 2u);
  const auto result = strace::read_trace_text(text);
  EXPECT_TRUE(result.warnings.empty());
  EXPECT_EQ(result.records.size(), 2u);
}

// -- SMT IOR mode -----------------------------------------------------

iosim::IorOptions smt_options() {
  iosim::IorOptions opt;
  opt.num_ranks = 2;
  opt.ranks_per_node = 2;
  opt.transfer_size = 1 << 16;
  opt.block_size = 1 << 18;
  opt.segments = 2;
  opt.threads_per_rank = 3;
  opt.simulate_startup = false;
  opt.cid = "smt";
  return opt;
}

TEST(SmtIor, OneTraceFilePerRankManyPids) {
  const auto traces = iosim::run_ior(smt_options());
  ASSERT_EQ(traces.traces.size(), 2u);
  std::set<std::uint64_t> pids;
  for (const auto& r : traces.traces[0].records) pids.insert(r.pid);
  EXPECT_EQ(pids.size(), 3u);  // three forked children (Sec. III: -f)
}

TEST(SmtIor, TransfersDividedNotDuplicated) {
  const auto log = iosim::run_ior(smt_options()).to_event_log();
  std::size_t writes = 0;
  std::int64_t bytes = 0;
  for (const auto& c : log.cases()) {
    for (const auto& e : c.events()) {
      if (e.call == "write") {
        ++writes;
        bytes += e.size;
      }
    }
  }
  // Same totals as a single-threaded run: 2 ranks x 2 segs x 4 transfers.
  EXPECT_EQ(writes, 16u);
  EXPECT_EQ(bytes, 16 * (1 << 16));
}

TEST(SmtIor, RecordsSortedWithinTraceFile) {
  const auto traces = iosim::run_ior(smt_options());
  for (const auto& t : traces.traces) {
    for (std::size_t i = 1; i < t.records.size(); ++i) {
      EXPECT_LE(t.records[i - 1].timestamp, t.records[i].timestamp);
    }
  }
}

TEST(SmtIor, WrittenFilesContainResumedRecordsAndParseClean) {
  const auto traces = iosim::run_ior(smt_options());
  bool any_unfinished = false;
  std::size_t total_records = 0;
  for (const auto& t : traces.traces) {
    const std::string text = strace::format_trace_interleaved(t.records);
    any_unfinished |= text.find("unfinished") != std::string::npos;
    const auto result = strace::read_trace_text(text);
    EXPECT_TRUE(result.warnings.empty());
    EXPECT_EQ(result.records.size(), t.records.size());
    total_records += result.records.size();
  }
  // Concurrent children on one rank must actually overlap somewhere.
  EXPECT_TRUE(any_unfinished);
  EXPECT_GT(total_records, 0u);
}

TEST(SmtIor, EventLogIdenticalFromMemoryAndDisk) {
  const auto traces = iosim::run_ior(smt_options());
  const std::string dir = ::testing::TempDir() + "/smt_traces";
  traces.write_files(dir);
  std::vector<std::string> files;
  for (const auto& t : traces.traces) {
    files.push_back(dir + "/" + strace::format_trace_filename(t.id));
  }
  const auto from_disk = model::event_log_from_files(files);
  const auto in_memory = traces.to_event_log();
  ASSERT_EQ(from_disk.total_events(), in_memory.total_events());
  // Events match as multisets per case: ties on the start timestamp
  // across pids may legally order differently after the text round
  // trip, so compare under a total order.
  const auto key = [](const model::Event& e) {
    return std::tuple(e.start, e.pid, e.call, e.fp, e.dur, e.size);
  };
  for (const auto& c : in_memory.cases()) {
    const auto* d = from_disk.find_case(c.id());
    ASSERT_NE(d, nullptr);
    ASSERT_EQ(d->size(), c.size());
    std::vector<model::Event> lhs(c.events().begin(), c.events().end());
    std::vector<model::Event> rhs(d->events().begin(), d->events().end());
    std::sort(lhs.begin(), lhs.end(), [&](const auto& a, const auto& b) { return key(a) < key(b); });
    std::sort(rhs.begin(), rhs.end(), [&](const auto& a, const auto& b) { return key(a) < key(b); });
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i], rhs[i]) << c.id().to_string() << " event " << i;
    }
  }
}

TEST(SmtIor, InvalidThreadsRejected) {
  auto opt = smt_options();
  opt.threads_per_rank = 0;
  EXPECT_THROW((void)iosim::run_ior(opt), LogicError);
}

}  // namespace
}  // namespace st
