#include "iosim/ior.hpp"

#include <gtest/gtest.h>

#include "dfg/builder.hpp"
#include "dfg/diff.hpp"
#include "dfg/stats.hpp"
#include "iosim/campaign.hpp"
#include "support/errors.hpp"

namespace st::iosim {
namespace {

IorOptions tiny(bool fpp = false, IorOptions::Api api = IorOptions::Api::Posix) {
  IorOptions opt;
  opt.num_ranks = 4;
  opt.ranks_per_node = 2;
  opt.transfer_size = 1 << 16;
  opt.block_size = 1 << 18;  // 4 transfers per block
  opt.segments = 2;
  opt.file_per_process = fpp;
  opt.api = api;
  opt.simulate_startup = false;
  opt.test_file = fpp ? "/p/scratch/fpp/test" : "/p/scratch/ssf/test";
  opt.cid = fpp ? "fpp" : "ssf";
  return opt;
}

std::size_t count_calls(const model::EventLog& log, const std::string& call) {
  std::size_t n = 0;
  for (const auto& c : log.cases()) {
    for (const auto& e : c.events()) {
      if (e.call == call) ++n;
    }
  }
  return n;
}

TEST(IorOptions, CommandLineMatchesFig7) {
  IorOptions opt;  // paper defaults
  EXPECT_EQ(opt.command_line(),
            "srun -n 96 ./strace.sh ./ior -t 1m -b 16m -s 3 -w -r -C -e -o /p/scratch/ssf/test");
  IorOptions fpp;
  fpp.file_per_process = true;
  fpp.test_file = "/p/scratch/fpp/test";
  EXPECT_EQ(fpp.command_line(),
            "srun -n 96 ./strace.sh ./ior -t 1m -b 16m -s 3 -w -r -C -e -F -o "
            "/p/scratch/fpp/test");
}

TEST(IorOptions, FppFileNaming) {
  IorOptions opt;
  opt.file_per_process = true;
  opt.test_file = "/p/scratch/fpp/test";
  EXPECT_EQ(opt.file_for_rank(7), "/p/scratch/fpp/test.00000007");
  opt.file_per_process = false;
  EXPECT_EQ(opt.file_for_rank(7), opt.test_file);
}

TEST(IorOptions, ReadPeerIsOneNodeAway) {
  IorOptions opt;
  opt.num_ranks = 96;
  opt.ranks_per_node = 48;
  EXPECT_EQ(opt.read_peer(0), 48);
  EXPECT_EQ(opt.read_peer(48), 0);
  EXPECT_EQ(opt.read_peer(95), 47);
  opt.reorder_tasks = false;
  EXPECT_EQ(opt.read_peer(0), 0);
}

TEST(IorOptions, InvalidConfigsThrow) {
  IorOptions opt = tiny();
  opt.num_ranks = 0;
  EXPECT_THROW((void)run_ior(opt), LogicError);
  opt = tiny();
  opt.block_size = opt.transfer_size * 3 / 2;  // not a multiple
  EXPECT_THROW((void)run_ior(opt), LogicError);
}

TEST(Ior, OneTracePerRankWithHostSplit) {
  const auto traces = run_ior(tiny());
  ASSERT_EQ(traces.traces.size(), 4u);
  EXPECT_EQ(traces.traces[0].id.host, "node1");
  EXPECT_EQ(traces.traces[1].id.host, "node1");
  EXPECT_EQ(traces.traces[2].id.host, "node2");
  EXPECT_EQ(traces.traces[3].id.host, "node2");
  EXPECT_EQ(traces.traces[0].id.cid, "ssf");
}

TEST(Ior, PosixOpCountsMatchGeometry) {
  const auto log = run_ior(tiny()).to_event_log();
  // 4 ranks x 2 segments x 4 transfers = 32 writes and 32 reads,
  // one lseek before each; 2 opens per rank; 1 fsync; 2 closes.
  EXPECT_EQ(count_calls(log, "write"), 32u);
  EXPECT_EQ(count_calls(log, "read"), 32u);
  EXPECT_EQ(count_calls(log, "lseek"), 64u);
  EXPECT_EQ(count_calls(log, "openat"), 8u);
  EXPECT_EQ(count_calls(log, "fsync"), 4u);
  EXPECT_EQ(count_calls(log, "close"), 8u);
}

TEST(Ior, MpiioUsesPositionedIoAndNoDataLseek) {
  const auto log = run_ior(tiny(false, IorOptions::Api::Mpiio)).to_event_log();
  EXPECT_EQ(count_calls(log, "pwrite64"), 32u);
  EXPECT_EQ(count_calls(log, "pread64"), 32u);
  EXPECT_EQ(count_calls(log, "write"), 0u);
  EXPECT_EQ(count_calls(log, "read"), 0u);
  EXPECT_EQ(count_calls(log, "lseek"), 0u);  // startup disabled here
}

TEST(Ior, WritesMoveConfiguredBytes) {
  const auto opt = tiny();
  const auto log = run_ior(opt).to_event_log();
  std::int64_t bytes = 0;
  for (const auto& c : log.cases()) {
    for (const auto& e : c.events()) {
      if (e.call == "write") bytes += e.size;
    }
  }
  EXPECT_EQ(bytes, static_cast<std::int64_t>(opt.num_ranks) * opt.segments * opt.block_size);
}

TEST(Ior, SsfAllRanksShareOneFile) {
  const auto log = run_ior(tiny()).to_event_log();
  for (const auto& c : log.cases()) {
    for (const auto& e : c.events()) {
      if (e.call == "write") EXPECT_EQ(e.fp, "/p/scratch/ssf/test");
    }
  }
}

TEST(Ior, FppEachRankOwnFileReadsNeighbor) {
  const auto log = run_ior(tiny(true)).to_event_log();
  const auto* rank0 = log.find_case(model::CaseId{"fpp", "node1", 9000});
  ASSERT_NE(rank0, nullptr);
  std::string write_file;
  std::string read_file;
  for (const auto& e : rank0->events()) {
    if (e.call == "write") write_file = e.fp;
    if (e.call == "read") read_file = e.fp;
  }
  EXPECT_EQ(write_file, "/p/scratch/fpp/test.00000000");
  EXPECT_EQ(read_file, "/p/scratch/fpp/test.00000002");  // peer = rank+2 (mod 4)
}

TEST(Ior, StartupPhaseTouchesSoftwareHomeAndNodeLocal) {
  auto opt = tiny();
  opt.simulate_startup = true;
  const auto log = run_ior(opt).to_event_log();
  bool software = false;
  bool home = false;
  bool shm = false;
  for (const auto& c : log.cases()) {
    for (const auto& e : c.events()) {
      software |= e.fp.starts_with("/p/software");
      home |= e.fp.starts_with("/p/home");
      shm |= e.fp.starts_with("/dev/shm");
    }
  }
  EXPECT_TRUE(software);
  EXPECT_TRUE(home);
  EXPECT_TRUE(shm);
}

TEST(Ior, DeterministicForFixedSeed) {
  const auto a = run_ior(tiny());
  const auto b = run_ior(tiny());
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    ASSERT_EQ(a.traces[i].records.size(), b.traces[i].records.size());
    for (std::size_t j = 0; j < a.traces[i].records.size(); ++j) {
      EXPECT_EQ(a.traces[i].records[j].timestamp, b.traces[i].records[j].timestamp);
      EXPECT_EQ(a.traces[i].records[j].duration, b.traces[i].records[j].duration);
    }
  }
}

TEST(Ior, SeedChangesJitterButNotStructure) {
  auto opt = tiny();
  const auto a = run_ior(opt);
  opt.seed = 777;
  const auto b = run_ior(opt);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  bool any_duration_differs = false;
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    ASSERT_EQ(a.traces[i].records.size(), b.traces[i].records.size());
    for (std::size_t j = 0; j < a.traces[i].records.size(); ++j) {
      EXPECT_EQ(a.traces[i].records[j].call, b.traces[i].records[j].call);
      any_duration_differs |=
          a.traces[i].records[j].duration != b.traces[i].records[j].duration;
    }
  }
  EXPECT_TRUE(any_duration_differs);
}

TEST(Ior, CleanupUnlinksUnlessKeepFiles) {
  auto opt = tiny();
  const auto log = run_ior(opt).to_event_log();
  EXPECT_EQ(count_calls(log, "unlinkat"), 1u);  // SSF: one shared file

  opt.keep_files = true;
  EXPECT_EQ(count_calls(run_ior(opt).to_event_log(), "unlinkat"), 0u);

  auto fpp = tiny(true);
  // FPP: rank 0 removes every rank's file.
  EXPECT_EQ(count_calls(run_ior(fpp).to_event_log(), "unlinkat"), 4u);
}

TEST(Ior, KeepFilesFlagInCommandLine) {
  IorOptions opt;
  opt.keep_files = true;
  EXPECT_NE(opt.command_line().find(" -k"), std::string::npos);
}

// The core Fig. 8b claim: SSF openat/write relative duration dominates
// its FPP counterparts.
TEST(Campaign, SsfContentionDominatesFpp) {
  const auto log = ssf_fpp_campaign(CampaignScale::small());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1)
                     .filtered_fp("/p/scratch");
  const auto stats = dfg::IoStatistics::compute(log, f);

  const auto* w_ssf = stats.find("write\n$SCRATCH/ssf");
  const auto* w_fpp = stats.find("write\n$SCRATCH/fpp");
  const auto* o_ssf = stats.find("openat\n$SCRATCH/ssf");
  const auto* o_fpp = stats.find("openat\n$SCRATCH/fpp");
  ASSERT_NE(w_ssf, nullptr);
  ASSERT_NE(w_fpp, nullptr);
  ASSERT_NE(o_ssf, nullptr);
  ASSERT_NE(o_fpp, nullptr);
  // At the reduced 8-rank test scale the write dilation is ~2-3x; the
  // full 96-rank ratios (EXPERIMENTS.md) are far larger.
  EXPECT_GT(w_ssf->rel_dur, 2.0 * w_fpp->rel_dur);
  EXPECT_GT(o_ssf->rel_dur, 5.0 * o_fpp->rel_dur);
  // Reads scale fine in both modes.
  const auto* r_ssf = stats.find("read\n$SCRATCH/ssf");
  ASSERT_NE(r_ssf, nullptr);
  EXPECT_LT(r_ssf->rel_dur, w_ssf->rel_dur);
}

TEST(Campaign, CampaignRestrictsCalls) {
  const auto log = ssf_fpp_campaign(CampaignScale::small());
  EXPECT_EQ(count_calls(log, "lseek"), 0u);
  EXPECT_EQ(count_calls(log, "fsync"), 0u);
  EXPECT_EQ(count_calls(log, "close"), 0u);
  EXPECT_GT(count_calls(log, "openat"), 0u);
}

// The core Fig. 9 claims.
TEST(Campaign, MpiioEliminatesScratchLseeks) {
  const auto log = mpiio_campaign(CampaignScale::small());
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto [green, red] =
      log.partition([](const model::Case& c) { return c.id().cid == "mpiio"; });
  const auto g_green = dfg::build_serial(green, f);
  const auto g_red = dfg::build_serial(red, f);
  const dfg::GraphDiff diff(g_green, g_red);

  // pread64/pwrite64 exclusive to the MPI-IO run (green).
  EXPECT_TRUE(diff.green_nodes().contains("pwrite64\n$SCRATCH"));
  EXPECT_TRUE(diff.green_nodes().contains("pread64\n$SCRATCH"));
  // lseek/read/write on $SCRATCH exclusive to the POSIX run (red).
  EXPECT_TRUE(diff.red_nodes().contains("lseek\n$SCRATCH"));
  EXPECT_TRUE(diff.red_nodes().contains("write\n$SCRATCH"));
  EXPECT_TRUE(diff.red_nodes().contains("read\n$SCRATCH"));
  // Startup activities occur in both runs (uncolored).
  EXPECT_TRUE(diff.common_nodes().contains("read\n$SOFTWARE"));
  EXPECT_TRUE(diff.common_nodes().contains("lseek\n$SOFTWARE"));
}

TEST(Campaign, MpiioReducesSyscallCountAndTotalDuration) {
  // Jitter off: the duration comparison is then exact — the POSIX run
  // pays the identical contention costs plus all the lseek services.
  CostModel no_jitter;
  no_jitter.jitter_sigma = 0.0;
  const auto log = mpiio_campaign(CampaignScale::small(), no_jitter);
  const auto [mpiio, posix] =
      log.partition([](const model::Case& c) { return c.id().cid == "mpiio"; });

  EXPECT_LT(mpiio.total_events(), posix.total_events());

  auto total_dur = [](const model::EventLog& l) {
    Micros t = 0;
    for (const auto& c : l.cases()) {
      for (const auto& e : c.events()) t += e.dur;
    }
    return t;
  };
  EXPECT_LT(total_dur(mpiio), total_dur(posix));
}

}  // namespace
}  // namespace st::iosim
