// corpus::Catalog (ISSUE 9): the resident corpus with memoized
// artifacts, and the serve request loop in front of it.
//
//   - loading mixes traces like the offline pipeline (byte-identical
//     base log);
//   - hit/miss/evict semantics of the LRU memo table, including
//     single-flight deduplication under a stampede;
//   - cached artifacts are byte-identical to uncached recomputation
//     and to the offline CLI path (build_report with the shared
//     query_report_options);
//   - concurrent lookup/evict/insert is clean (this test is in the
//     TSan job's target list);
//   - handle_request/serve_lines: canonical echo, payload framing,
//     graceful error replies, shutdown.
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/catalog.hpp"
#include "corpus/serve.hpp"
#include "dfg/coloring.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/stream.hpp"
#include "report/report.hpp"
#include "testing_corpus.hpp"

namespace st::corpus {
namespace {

using model::Query;

class CatalogTest : public st::testing::CorpusTest {
 protected:
  CatalogTest() : CorpusTest("catalog") {}

  Catalog make_catalog(std::size_t capacity = 64) {
    CatalogOptions opts;
    opts.cache_capacity = capacity;
    Catalog catalog(opts);
    ThreadPool pool(2);
    catalog.load(corpus_, pool);
    return catalog;
  }

  void SetUp() override {
    CorpusTest::SetUp();
    corpus_ = make_corpus();
  }

  std::vector<std::string> corpus_;
};

TEST_F(CatalogTest, LoadMatchesTheOfflinePipeline) {
  auto catalog = make_catalog();
  ThreadPool pool(2);
  const auto offline = pipeline::event_log_streamed(corpus_, pool);
  st::testing::expect_same_log(*catalog.base(), offline);
  // warnings live on load_warnings(), the base log itself keeps them too
  EXPECT_EQ(catalog.load_warnings(), offline.warnings());
}

TEST_F(CatalogTest, HitMissEvictSemantics) {
  auto catalog = make_catalog(/*capacity=*/2);
  const auto q1 = Query().fp_contains("/p/data");
  const auto q2 = Query().fp_contains("/p/scratch");
  const auto q3 = Query().calls({"read"});

  (void)catalog.filtered(q1);  // miss
  (void)catalog.filtered(q1);  // hit
  auto s = catalog.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);

  (void)catalog.filtered(q2);  // miss, fills capacity
  (void)catalog.filtered(q3);  // miss, evicts q1 (least recently used)
  s = catalog.cache_stats();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);

  (void)catalog.filtered(q1);  // recompute after eviction: a miss again
  s = catalog.cache_stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 1u);

  // q3 was touched more recently than q2 at the q1 insert, so q2 is
  // the victim: q3 must still be resident.
  (void)catalog.filtered(q3);  // hit
  EXPECT_EQ(catalog.cache_stats().hits, 2u);
}

TEST_F(CatalogTest, EvictedHandlesStayValid) {
  auto catalog = make_catalog(/*capacity=*/1);
  const auto q = Query().fp_contains("/p/data");
  const auto held = catalog.filtered(q);
  (void)catalog.filtered(Query().fp_contains("/p/scratch"));  // evicts q
  EXPECT_GE(catalog.cache_stats().evictions, 1u);
  // The shared_ptr keeps the artifact alive past eviction.
  EXPECT_GT(held->case_count(), 0u);
}

TEST_F(CatalogTest, CacheIdentityIsTheCanonicalDescribe) {
  auto catalog = make_catalog();
  // Two spellings, one canonical form -> the second request is a HIT
  // and returns the SAME artifact object.
  const auto a = catalog.filtered(Query().calls({"write", "read"}));
  const auto b = catalog.filtered(Query::parse("  calls{read , write} "));
  EXPECT_EQ(a.get(), b.get());
  const auto s = catalog.cache_stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST_F(CatalogTest, CachedArtifactsMatchUncachedRecomputation) {
  auto catalog = make_catalog();
  const auto q = Query().fp_contains("/p/scratch").calls({"read", "write", "openat"});
  const auto cached_first = catalog.report_html(q);
  const auto cached_again = catalog.report_html(q);
  EXPECT_EQ(cached_first.get(), cached_again.get());  // served from cache

  // A fresh catalog (nothing memoized) over the same inputs.
  auto cold = make_catalog();
  EXPECT_EQ(*cold.report_html(q), *cached_first);

  // And the offline path: the same build_report call trace_explorer
  // --render report makes.
  const auto view = q.apply(*cold.base());
  const auto stats = dfg::IoStatistics::compute(view, cold.mapping());
  const dfg::StatisticsColoring styler(stats);
  const auto offline =
      report::build_report(view, cold.mapping(), &styler, query_report_options(q, cold.mapping()));
  EXPECT_EQ(offline, *cached_first);
}

TEST_F(CatalogTest, SingleFlightUnderStampede) {
  auto catalog = make_catalog();
  const auto q = Query().fp_contains("/p/data");
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const std::string>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] { results[i] = catalog.report_html(q); });
    }
    for (auto& t : threads) t.join();
  }
  // Everyone got the same object, and the report was computed ONCE.
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(results[0].get(), results[i].get());
  const auto s = catalog.cache_stats();
  // report -> filtered + iostats dependencies: 3 distinct keys, each
  // computed exactly once regardless of the stampede. Hits: the other
  // kThreads-1 requesters, plus compute_io_stats re-reading the
  // already-cached filtered log.
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads));
}

TEST_F(CatalogTest, ConcurrentMixedAccessStaysCoherent) {
  // Small capacity forces concurrent insert/evict/lookup interleaving
  // — the TSan job runs this against the catalog's locking.
  auto catalog = make_catalog(/*capacity=*/3);
  const std::vector<Query> queries = {
      Query(),
      Query().fp_contains("/p/data"),
      Query().fp_contains("/p/scratch"),
      Query().calls({"read"}),
      Query().calls({"write", "openat"}),
      Query().between(36000000000, 36000040000),
  };
  constexpr int kThreads = 6;
  constexpr int kRounds = 12;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const auto& q = queries[static_cast<std::size_t>(t + r) % queries.size()];
        switch ((t + r) % 4) {
          case 0: EXPECT_NE(catalog.filtered(q), nullptr); break;
          case 1: EXPECT_NE(catalog.graph(q), nullptr); break;
          case 2: EXPECT_NE(catalog.summaries(q), nullptr); break;
          default: EXPECT_NE(catalog.variants(q), nullptr); break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Whatever the interleaving, capacity holds and each artifact equals
  // a cold recompute.
  const auto s = catalog.cache_stats();
  EXPECT_LE(s.entries, 3u);
  auto cold = make_catalog();
  for (const auto& q : queries) {
    st::testing::expect_same_log(*catalog.filtered(q), *cold.filtered(q));
  }
}

TEST_F(CatalogTest, FailuresAreNotCached) {
  CatalogOptions opts;
  Catalog catalog(opts);  // no load(): artifact computation must fail
  const auto q = Query().fp_contains("/p");
  EXPECT_THROW((void)catalog.filtered(q), LogicError);
  // The failed flight must not poison the key: after load, the same
  // query computes.
  ThreadPool pool(2);
  catalog.load(corpus_, pool);
  EXPECT_NE(catalog.filtered(q), nullptr);
}

// -- the serve loop over the catalog ---------------------------------

TEST_F(CatalogTest, HandleRequestEchoesCanonicalQueryAndFramesPayload) {
  auto catalog = make_catalog();
  const auto r = handle_request(catalog, "query   calls{write , read}  ");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.header.find("\"verb\":\"query\""), std::string::npos) << r.header;
  EXPECT_NE(r.header.find("\"query\":\"calls{read,write}\""), std::string::npos) << r.header;
  EXPECT_NE(r.header.find("\"bytes\":" + std::to_string(r.payload.size())), std::string::npos)
      << r.header;
  EXPECT_EQ(r.payload, model::render_case_summaries(
                           *catalog.summaries(Query().calls({"read", "write"}))));
}

TEST_F(CatalogTest, HandleRequestRepliesGracefullyToBadInput) {
  auto catalog = make_catalog();
  const auto parse_error = handle_request(catalog, "query calls{read");
  ASSERT_FALSE(parse_error.ok);
  EXPECT_NE(parse_error.header.find("\"ok\":false"), std::string::npos);
  // Offsets are relative to the query text (what the client sent
  // after the verb): "calls{read" fails at its own byte 10.
  EXPECT_NE(parse_error.header.find("\"position\":10"), std::string::npos) << parse_error.header;
  EXPECT_TRUE(parse_error.payload.empty());

  const auto bad_verb = handle_request(catalog, "frobnicate all");
  ASSERT_FALSE(bad_verb.ok);
  EXPECT_NE(bad_verb.header.find("unknown verb"), std::string::npos) << bad_verb.header;

  // A failed request must not kill subsequent ones.
  EXPECT_TRUE(handle_request(catalog, "ping").ok);
}

TEST_F(CatalogTest, ServeLinesSpeaksTheFramedProtocol) {
  auto catalog = make_catalog();
  std::istringstream in("ping\nreport fp~/p/scratch\nshutdown\nquery all\n");
  std::ostringstream out;
  serve_lines(catalog, in, out);
  const std::string stream = out.str();

  // ping reply
  ASSERT_TRUE(stream.starts_with("{\"ok\":true,\"verb\":\"ping\",\"query\":\"\",\"bytes\":5}\n"));
  std::size_t pos = stream.find('\n') + 1;
  EXPECT_EQ(stream.substr(pos, 5), "pong\n");
  pos += 5;

  // report reply: header bytes N, then exactly N payload bytes that
  // equal the catalog's artifact.
  const auto expected = *catalog.report_html(Query::parse("fp~/p/scratch"));
  const std::size_t header_end = stream.find('\n', pos);
  const std::string header = stream.substr(pos, header_end - pos);
  EXPECT_NE(header.find("\"bytes\":" + std::to_string(expected.size())), std::string::npos)
      << header;
  EXPECT_EQ(stream.substr(header_end + 1, expected.size()), expected);

  // shutdown ends the session: the trailing "query all" is never
  // answered.
  EXPECT_TRUE(stream.ends_with("bye\n"));
  EXPECT_EQ(stream.find("\"verb\":\"query\""), std::string::npos);
}

TEST_F(CatalogTest, StatReportsCorpusAndCacheCounters) {
  auto catalog = make_catalog();
  (void)catalog.filtered(Query());  // one miss
  const auto r = handle_request(catalog, "stat");
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.payload.find("\"cases\":" + std::to_string(catalog.base()->case_count())),
            std::string::npos)
      << r.payload;
  EXPECT_NE(r.payload.find("\"misses\":1"), std::string::npos) << r.payload;
}

}  // namespace
}  // namespace st::corpus
