// Robustness corpus: realistic, messy strace output lines — struct
// dumps, string arrays, hex returns, device annotations, truncation
// markers. The parser must never crash: every line either yields a
// record with sensible basics or a ParseError the reader converts into
// a warning.
#include <gtest/gtest.h>

#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "support/errors.hpp"

namespace st::strace {
namespace {

TEST(Corpus, ExecveWithStringArrayAndComment) {
  const auto rec = parse_line(
      R"(9054  08:55:54.100000 execve("/bin/ls", ["ls", "-l"], 0x7ffd7a7a7a /* 23 vars */) = 0 <0.000250>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "execve");
  EXPECT_EQ(rec->retval, 0);
  EXPECT_EQ(rec->duration, 250);
}

TEST(Corpus, FstatWithStructDump) {
  const auto rec = parse_line(
      "9054  08:55:54.100100 fstat(3</etc/passwd>, {st_mode=S_IFREG|0644, st_size=2996, "
      "st_blocks=8, ...}) = 0 <0.000007>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "fstat");
  EXPECT_EQ(rec->fd, 3);
  EXPECT_EQ(rec->path, "/etc/passwd");
  EXPECT_EQ(rec->retval, 0);
}

TEST(Corpus, MmapHexReturn) {
  const auto rec = parse_line(
      "9054  08:55:54.100200 mmap(NULL, 139264, PROT_READ|PROT_EXEC, MAP_PRIVATE|MAP_DENYWRITE, "
      "3</usr/lib/x86_64-linux-gnu/libc.so.6>, 0x28000) = 0x7f1a2b400000 <0.000012>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "mmap");
  EXPECT_FALSE(rec->retval);  // pointer, not a transfer size
  EXPECT_EQ(rec->path, "/usr/lib/x86_64-linux-gnu/libc.so.6");
}

TEST(Corpus, Getdents64) {
  const auto rec = parse_line(
      "9054  08:55:54.100300 getdents64(3</tmp>, 0x55f1c2a3b0, 32768) = 1024 <0.000031>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 1024);
  EXPECT_EQ(rec->path, "/tmp");
  EXPECT_FALSE(rec->is_data_transfer());  // dirents are not payload bytes
}

TEST(Corpus, RtSigactionWithNestedBraces) {
  const auto rec = parse_line(
      "9054  08:55:54.100400 rt_sigaction(SIGINT, {sa_handler=SIG_DFL, sa_mask=[], "
      "sa_flags=SA_RESTORER, sa_restorer=0x7f1a2b445520}, NULL, 8) = 0 <0.000004>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "rt_sigaction");
  EXPECT_EQ(rec->retval, 0);
}

TEST(Corpus, CloneReturnsChildPid) {
  const auto rec = parse_line(
      "9042  08:55:54.090000 clone(child_stack=NULL, "
      "flags=CLONE_CHILD_CLEARTID|CLONE_CHILD_SETTID|SIGCHLD, "
      "child_tidptr=0x7f1a2b3f0a10) = 9054 <0.000090>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 9054);
}

TEST(Corpus, BrkNullArgument) {
  const auto rec = parse_line("9054  08:55:54.100500 brk(NULL) = 0x55f1c2a00000 <0.000003>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "brk");
  EXPECT_FALSE(rec->retval);
}

TEST(Corpus, SocketAnnotation) {
  const auto rec = parse_line(
      "9054  08:55:54.100600 sendto(4<socket:[1234567]>, \"GET / HTTP/1.1\\r\\n\", 16, "
      "MSG_NOSIGNAL, NULL, 0) = 16 <0.000044>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->fd, 4);
  EXPECT_EQ(rec->path, "socket:[1234567]");
  EXPECT_EQ(rec->retval, 16);
}

TEST(Corpus, TruncatedPayloadEllipsis) {
  const auto rec = parse_line(
      R"(9054  08:55:54.100700 read(3</etc/locale.alias>, "# Locale name alias data base"..., 4096) = 2996 <0.000041>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 2996);
  EXPECT_EQ(rec->requested, 4096);
}

TEST(Corpus, DevicePathWithNestedAngleBrackets) {
  // Some strace builds append device numbers: 1</dev/pts/7<char 136:7>>.
  const auto rec = parse_line(
      "9054  08:55:54.100800 write(1</dev/pts/7<char 136:7>>, \"x\\n\", 2) = 2 <0.000020>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->fd, 1);
  // The annotation keeps the inner decoration; path-based filters on
  // "/dev/pts" still match.
  EXPECT_EQ(rec->path.substr(0, 10), "/dev/pts/7");
  EXPECT_EQ(rec->retval, 2);
}

TEST(Corpus, FutexEtimedout) {
  const auto rec = parse_line(
      "9054  08:55:54.100900 futex(0x55f1c2a3b0, FUTEX_WAIT_PRIVATE, 2, {tv_sec=0, "
      "tv_nsec=100000}) = -1 ETIMEDOUT (Connection timed out) <0.000130>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, -1);
  EXPECT_EQ(rec->errno_name, "ETIMEDOUT");
}

TEST(Corpus, StatxWithMaskFlags) {
  const auto rec = parse_line(
      "9054  08:55:54.101000 statx(AT_FDCWD, \"/p/scratch/ssf/test\", "
      "AT_STATX_SYNC_AS_STAT, STATX_ALL, {stx_mask=STATX_ALL, stx_size=50331648, ...}) = 0 "
      "<0.000015>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "statx");
  EXPECT_EQ(rec->retval, 0);
}

TEST(Corpus, IoctlWeirdArgs) {
  const auto rec = parse_line(
      "9054  08:55:54.101100 ioctl(1</dev/pts/7>, TCGETS, {B38400 opost isig icanon echo "
      "...}) = 0 <0.000008>");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->call, "ioctl");
}

TEST(Corpus, WholeCorpusThroughReaderNoCrashes) {
  const std::string corpus =
      "9054  08:55:54.100000 execve(\"/bin/ls\", [\"ls\"], 0x7f /* 23 vars */) = 0 <0.000250>\n"
      "9054  08:55:54.100100 brk(NULL) = 0x55f1c2a00000 <0.000003>\n"
      "garbage that is not a record at all\n"
      "9054  08:55:54.100200 openat(AT_FDCWD, \"/etc/ld.so.cache\", O_RDONLY|O_CLOEXEC) = "
      "3</etc/ld.so.cache> <0.000009>\n"
      "9054  08:55:54.100300 read(3</etc/ld.so.cache>, \"\\177ELF\\2\\1\\1\\3\"..., 832) = 832 "
      "<0.000011>\n"
      "9054  08:55:54.100400 close(3</etc/ld.so.cache>) = 0 <0.000004>\n"
      "9054  08:55:54.100500 --- SIGCHLD {si_signo=SIGCHLD} ---\n"
      "9054  08:55:54.100600 +++ exited with 0 +++\n";
  const auto result = read_trace_text(corpus);
  EXPECT_EQ(result.warnings.size(), 1u);  // only the garbage line
  // execve, brk, openat, read, close (signal/exit dropped).
  EXPECT_EQ(result.records.size(), 5u);
  // The openat resolved its path from the annotated return value.
  EXPECT_EQ(result.records[2].path, "/etc/ld.so.cache");
  EXPECT_EQ(result.records[2].retval, 3);
}

TEST(Corpus, OpenatAnnotatedReturnResolvesRelativePath) {
  const auto rec = parse_line(
      "9054  08:55:54.101200 openat(AT_FDCWD, \"test\", O_RDONLY) = "
      "5</p/scratch/ssf/test> <0.000020>");
  ASSERT_TRUE(rec);
  // The quoted argument wins when non-empty; the annotation is kept
  // only when the argument produced nothing.
  EXPECT_EQ(rec->path, "test");
  EXPECT_EQ(rec->retval, 5);
}

TEST(Corpus, EscapedOctalInPayloadDoesNotConfuseParser) {
  const auto rec = parse_line(
      R"(9054  08:55:54.101300 read(3</bin/ls>, "\177ELF\2\1\1\0\0\0"..., 832) = 832 <0.000010>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 832);
  EXPECT_EQ(rec->path, "/bin/ls");
}

TEST(Corpus, QuotedParenAndCommaInPayload) {
  const auto rec = parse_line(
      R"(9054  08:55:54.101400 write(1</dev/pts/7>, "a, b) = x <zzz>\n", 15) = 15 <0.000009>)");
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->retval, 15);
  EXPECT_EQ(rec->requested, 15);
}

}  // namespace
}  // namespace st::strace
