// ISSUE 7 acceptance for the partial codec (pipeline/partial_codec):
//   - every per-sink encode/decode pair round-trips EXACTLY (doubles
//     by bit pattern),
//   - encode -> decode -> merge equals the direct merge,
//   - re-encoding a decoded blob reproduces the bytes (canonical form),
//   - EVERY truncation and EVERY single-bit flip of a blob is rejected
//     as IoError — never silently wrong analytics,
//   - hand-crafted valid-CRC-but-bad-content sections still fail
//     loudly (pool ids out of range, booleans out of range, element
//     counts exceeding the payload).
#include "pipeline/partial_codec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "dfg/builder.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/query.hpp"
#include "support/errors.hpp"
#include "testing_corpus.hpp"
#include "testing_util.hpp"

namespace st {
namespace {

using pipeline::PartialReader;
using pipeline::PartialSection;
using pipeline::PartialWriter;
using pipeline::ShardPartial;
using testing::ev;
using testing::expect_same_io_stats;
using testing::expect_same_log;
using testing::make_case;

model::EventLog sample_log() {
  model::EventLog log;
  log.add_case(make_case("w0", 1,
                         {ev("read", "/p/data/a", 0, 7, 1000),
                          ev("pwrite64", "/p/scratch/b", 10, 3, 999),
                          ev("read", "/p/data/a", 20, 11, 123457)}));
  log.add_case(make_case("w1", 2,
                         {ev("openat", "/p/scratch/c", 100, 5),
                          ev("read", "/p/data/a", 110, 11, 123)},
                         "host2"));
  log.add_case(make_case("w2", 3, {}));  // empty case, empty variant
  return log;
}

model::EventLog other_log() {
  model::EventLog log;
  log.add_case(make_case("x0", 4,
                         {ev("read", "/p/data/a", 40, 9, 2048),
                          ev("write", "/p/data/d", 60, 2, 17)}));
  return log;
}

/// Builds the ShardPartial a fold over `log` would produce (hand-built
/// here so the codec is tested in isolation from the pipeline).
ShardPartial sample_partial(const model::EventLog& log, bool with_query,
                            std::vector<std::string> warnings) {
  const auto f = model::Mapping::call_top_dirs(2);
  ShardPartial p;
  p.case_count = log.case_count();
  p.total_events = log.total_events();
  p.warnings = std::move(warnings);
  p.graph = dfg::build_serial(log, f);
  p.case_summaries = model::summarize_cases(log);
  p.activity_log = model::ActivityLog::build(log, f);
  p.variants = p.activity_log.variants();
  for (const auto& c : log.cases()) {
    p.io.add_case(c, f);
    p.edges.add_case(c, f);
  }
  if (with_query) p.filtered = model::Query().calls({"read"}).apply(log);
  return p;
}

void expect_same_activity_log(const model::ActivityLog& a, const model::ActivityLog& b) {
  EXPECT_EQ(a.variants(), b.variants());
  EXPECT_EQ(a.per_case(), b.per_case());
  EXPECT_EQ(a.activities(), b.activities());
  EXPECT_EQ(a.case_count(), b.case_count());
  EXPECT_EQ(a.total_activity_instances(), b.total_activity_instances());
}

void expect_same_shard_partial(const ShardPartial& a, const ShardPartial& b) {
  EXPECT_EQ(a.case_count, b.case_count);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.case_summaries, b.case_summaries);
  expect_same_activity_log(a.activity_log, b.activity_log);
  EXPECT_EQ(a.variants, b.variants);
  EXPECT_EQ(a.io, b.io);
  EXPECT_EQ(a.edges, b.edges);
  ASSERT_EQ(a.filtered.has_value(), b.filtered.has_value());
  if (a.filtered) expect_same_log(*a.filtered, *b.filtered);
}

// ---- per-type round trips ----------------------------------------------

TEST(PartialCodec, EveryPairRoundTripsExactly) {
  const auto log = sample_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto graph = dfg::build_serial(log, f);
  const auto summaries = model::summarize_cases(log);
  const auto activity_log = model::ActivityLog::build(log, f);
  const auto filtered = model::Query().calls({"read"}).apply(log);
  dfg::IoStatistics::Partial io;
  dfg::EdgeStatistics::Partial edges;
  for (const auto& c : log.cases()) {
    io.add_case(c, f);
    edges.add_case(c, f);
  }

  // One writer, one section per kind — the exact multi-section shape
  // encode_shard_partial emits.
  PartialWriter w;
  pipeline::encode_dfg_partial(w, graph);
  pipeline::encode_case_stats_partial(w, summaries);
  pipeline::encode_activity_log_partial(w, activity_log);
  pipeline::encode_variants_partial(w, activity_log.variants());
  pipeline::encode_query_log_partial(w, filtered);
  pipeline::encode_io_stats_partial(w, io);
  pipeline::encode_edge_stats_partial(w, edges);
  const std::string blob = w.finish();

  const PartialReader r(blob);
  EXPECT_EQ(pipeline::decode_dfg_partial(r), graph);
  EXPECT_EQ(pipeline::decode_case_stats_partial(r), summaries);
  expect_same_activity_log(pipeline::decode_activity_log_partial(r), activity_log);
  EXPECT_EQ(pipeline::decode_variants_partial(r), activity_log.variants());
  expect_same_log(pipeline::decode_query_log_partial(r), filtered);
  EXPECT_EQ(pipeline::decode_io_stats_partial(r), io);
  EXPECT_EQ(pipeline::decode_edge_stats_partial(r), edges);
}

TEST(PartialCodec, ShardPartialRoundTripsWithAndWithoutQuery) {
  for (const bool with_query : {false, true}) {
    const ShardPartial p =
        sample_partial(sample_log(), with_query, {"big_nodeA_9001.st: line 4: noise"});
    const std::string blob = pipeline::encode_shard_partial(p);
    const ShardPartial q = pipeline::decode_shard_partial(blob);
    expect_same_shard_partial(p, q);
  }
}

TEST(PartialCodec, ReencodingADecodedBlobIsByteStable) {
  // decode is exact and encode deterministic, so the round trip must
  // reproduce the canonical bytes — the property that lets the
  // coordinator (or a cache) treat blobs as content-addressable.
  const std::string blob =
      pipeline::encode_shard_partial(sample_partial(sample_log(), true, {"w: warn"}));
  EXPECT_EQ(pipeline::encode_shard_partial(pipeline::decode_shard_partial(blob)), blob);
}

TEST(PartialCodec, DecodeThenMergeEqualsDirectMerge) {
  // Warnings chosen so the shard seam exercises the consecutive-
  // duplicate collapse: direct and decoded merges must agree on it.
  const std::vector<std::string> w1 = {"a.st: warn", "shared: tail warn"};
  const std::vector<std::string> w2 = {"shared: tail warn", "b.st: warn"};

  ShardPartial direct = sample_partial(sample_log(), true, w1);
  direct.merge(sample_partial(other_log(), true, w2));

  ShardPartial via = pipeline::decode_shard_partial(
      pipeline::encode_shard_partial(sample_partial(sample_log(), true, w1)));
  via.merge(pipeline::decode_shard_partial(
      pipeline::encode_shard_partial(sample_partial(other_log(), true, w2))));

  expect_same_shard_partial(direct, via);
  EXPECT_EQ(direct.warnings,
            (std::vector<std::string>{"a.st: warn", "shared: tail warn", "b.st: warn"}));
  // And the finalized doubles agree bit for bit.
  expect_same_io_stats(direct.io.finalize(), via.io.finalize());
  EXPECT_EQ(direct.edges.finalize().per_edge(), via.edges.finalize().per_edge());
}

// ---- corruption: every defect is an IoError ----------------------------

TEST(PartialCodec, EveryTruncationIsIoError) {
  const std::string blob =
      pipeline::encode_shard_partial(sample_partial(sample_log(), false, {"a.st: warn"}));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW((void)pipeline::decode_shard_partial(blob.substr(0, len)), IoError)
        << "prefix length " << len;
  }
}

TEST(PartialCodec, EverySingleBitFlipIsIoError) {
  const std::string blob =
      pipeline::encode_shard_partial(sample_partial(sample_log(), false, {"a.st: warn"}));
  std::string mutated = blob;
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated[i] = static_cast<char>(blob[i] ^ (1 << bit));
      EXPECT_THROW((void)pipeline::decode_shard_partial(mutated), IoError)
          << "byte " << i << " bit " << bit;
    }
    mutated[i] = blob[i];
  }
}

TEST(PartialCodec, GarbageBlobsAreIoError) {
  EXPECT_THROW((void)pipeline::decode_shard_partial(""), IoError);
  EXPECT_THROW((void)pipeline::decode_shard_partial("not a partial blob at all"), IoError);
  EXPECT_THROW((void)pipeline::decode_shard_partial(std::string(64, '\0')), IoError);
}

TEST(PartialCodec, MissingRequiredSectionIsIoError) {
  // A structurally valid blob (magic, CRCs, pool) carrying only Meta:
  // decode_shard_partial must reject it when it reaches the DFG.
  PartialWriter w;
  std::string meta;
  meta.push_back('\0');  // case_count = 0
  meta.push_back('\0');  // total_events = 0
  meta.push_back('\0');  // no warnings
  w.add_section(PartialSection::kMeta, std::move(meta));
  EXPECT_THROW((void)pipeline::decode_shard_partial(w.finish()), IoError);
}

TEST(PartialCodec, ValidCrcBadContentStillFailsLoudly) {
  {
    // Pool id out of range behind a correct checksum.
    PartialWriter w;
    std::string io;
    io.push_back('\x01');  // one case
    io.push_back('\x07');  // cid pool id 7 — the pool is empty
    w.add_section(PartialSection::kIoStats, std::move(io));
    const std::string blob = w.finish();
    const PartialReader r(blob);
    EXPECT_THROW((void)pipeline::decode_io_stats_partial(r), IoError);
  }
  {
    // Boolean byte outside {0, 1}.
    PartialWriter w;
    const std::uint32_t id = w.intern("x");
    ASSERT_EQ(id, 0u);
    std::string io;
    io.push_back('\x01');                              // one case
    io.push_back('\0'), io.push_back('\0'), io.push_back('\0');  // case id x/x/0
    io.push_back('\x01');                              // one activity
    io.push_back('\0');                                // activity id 0
    io.push_back('\0');                                // total_dur 0
    io.push_back('\0');                                // event_count 0
    io.push_back('\0');                                // bytes 0
    io.push_back('\x02');                              // has_bytes = 2: invalid
    w.add_section(PartialSection::kIoStats, std::move(io));
    const std::string blob = w.finish();
    const PartialReader r(blob);
    EXPECT_THROW((void)pipeline::decode_io_stats_partial(r), IoError);
  }
  {
    // Element count larger than the bytes that could hold it.
    PartialWriter w;
    std::string v;
    v.push_back('\xC8');  // uvarint 200...
    v.push_back('\x01');  // ...with no elements behind it
    w.add_section(PartialSection::kVariants, std::move(v));
    const std::string blob = w.finish();
    const PartialReader r(blob);
    EXPECT_THROW((void)pipeline::decode_variants_partial(r), IoError);
  }
}

// ---- writer / reader unit checks ---------------------------------------

TEST(PartialCodec, DuplicateSectionIsLogicError) {
  PartialWriter w;
  w.add_section(PartialSection::kMeta, "");
  EXPECT_THROW(w.add_section(PartialSection::kMeta, ""), LogicError);
}

TEST(PartialCodec, ReaderPoolAndSectionAccess) {
  PartialWriter w;
  EXPECT_EQ(w.intern("alpha"), 0u);
  EXPECT_EQ(w.intern(""), 1u);
  EXPECT_EQ(w.intern("alpha"), 0u);  // interning is idempotent
  w.add_section(PartialSection::kMeta, "m");
  const std::string blob = w.finish();

  const PartialReader r(blob);
  EXPECT_TRUE(r.has_section(PartialSection::kStringPool));
  EXPECT_TRUE(r.has_section(PartialSection::kMeta));
  EXPECT_FALSE(r.has_section(PartialSection::kDfg));
  EXPECT_EQ(r.section(PartialSection::kMeta), "m");
  EXPECT_THROW((void)r.section(PartialSection::kDfg), IoError);
  EXPECT_EQ(r.pool_string(0), "alpha");
  EXPECT_EQ(r.pool_string(1), "");
  EXPECT_THROW((void)r.pool_string(2), IoError);
}

}  // namespace
}  // namespace st
