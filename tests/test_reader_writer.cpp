#include <gtest/gtest.h>

#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"

namespace st::strace {
namespace {

constexpr const char* kSmallTrace =
    "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = 832 <0.000203>\n"
    "9054  08:55:54.156640 read(3</usr/lib/x86_64-linux-gnu/libc.so.6>, ..., 832) = 832 <0.000079>\n"
    "9054  08:55:54.176260 write(1</dev/pts/7>, ..., 50) = 50 <0.000111>\n";

TEST(Reader, ParsesAllLines) {
  const auto result = read_trace_text(kSmallTrace);
  EXPECT_TRUE(result.warnings.empty());
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].call, "read");
  EXPECT_EQ(result.records[2].call, "write");
}

TEST(Reader, MergesUnfinishedResumed) {
  const std::string text =
      "1  10:00:00.000001 read(3</a>, <unfinished ...>\n"
      "2  10:00:00.000002 write(4</b>, ..., 5) = 5 <0.000001>\n"
      "1  10:00:00.000007 <... read resumed> ..., 10) = 10 <0.000006>\n";
  const auto result = read_trace_text(text);
  ASSERT_EQ(result.records.size(), 2u);
  // Order of completion: the write completes first, then the merged read.
  EXPECT_EQ(result.records[0].call, "write");
  EXPECT_EQ(result.records[1].call, "read");
  EXPECT_EQ(result.records[1].duration, 6);
}

TEST(Reader, DropsRestartsByDefault) {
  const std::string text =
      "1  10:00:00.000001 read(3</a>, ..., 5) = -1 ERESTARTSYS (To be restarted) <0.000001>\n"
      "1  10:00:00.000002 read(3</a>, ..., 5) = 5 <0.000001>\n";
  const auto result = read_trace_text(text);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].retval, 5);
}

TEST(Reader, KeepsRestartsWhenAsked) {
  ReadOptions opts;
  opts.drop_restarts = false;
  const auto result = read_trace_text(
      "1  10:00:00.000001 read(3</a>, ..., 5) = -1 ERESTARTSYS (x) <0.000001>\n", opts);
  EXPECT_EQ(result.records.size(), 1u);
}

TEST(Reader, DropsSignalsAndExitsByDefault) {
  const std::string text =
      "1  10:00:00.000001 --- SIGCHLD {} ---\n"
      "1  10:00:00.000002 +++ exited with 0 +++\n";
  const auto result = read_trace_text(text);
  EXPECT_TRUE(result.records.empty());
}

TEST(Reader, MalformedLineBecomesWarning) {
  const std::string text =
      "garbage line without pid\n"
      "1  10:00:00.000002 read(3</a>, ..., 5) = 5 <0.000001>\n";
  const auto result = read_trace_text(text);
  EXPECT_EQ(result.records.size(), 1u);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("line 1"), std::string::npos);
}

TEST(Reader, StrictModeThrows) {
  ReadOptions opts;
  opts.strict = true;
  EXPECT_THROW((void)read_trace_text("garbage\n", opts), ParseError);
}

TEST(Reader, DanglingUnfinishedBecomesWarning) {
  const auto result = read_trace_text("1  10:00:00.000001 read(3</a>, <unfinished ...>\n");
  EXPECT_TRUE(result.records.empty());
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("never resumed"), std::string::npos);
}

TEST(Reader, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/trace.st"), IoError);
}

TEST(Writer, FormatsCompleteRecord) {
  RawRecord rec;
  rec.pid = 9054;
  rec.timestamp = *parse_time_of_day("08:55:54.153994");
  rec.call = "read";
  rec.args = "3</usr/lib/libc.so.6>, \"\"..., 832";
  rec.retval = 832;
  rec.duration = 203;
  EXPECT_EQ(format_record(rec),
            "9054  08:55:54.153994 read(3</usr/lib/libc.so.6>, \"\"..., 832) = 832 <0.000203>");
}

TEST(Writer, RoundTripsThroughParser) {
  RawRecord rec;
  rec.pid = 77;
  rec.timestamp = *parse_time_of_day("10:00:00.000123");
  rec.call = "pwrite64";
  rec.args = "5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432";
  rec.retval = 1048576;
  rec.duration = 294;

  const std::string line = format_record(rec);  // must outlive the record's views
  const auto reparsed = parse_line(line);
  ASSERT_TRUE(reparsed);
  EXPECT_EQ(reparsed->pid, rec.pid);
  EXPECT_EQ(reparsed->timestamp, rec.timestamp);
  EXPECT_EQ(reparsed->call, rec.call);
  EXPECT_EQ(reparsed->retval, rec.retval);
  EXPECT_EQ(reparsed->duration, rec.duration);
  EXPECT_EQ(reparsed->path, "/p/scratch/ssf/test");
  EXPECT_EQ(reparsed->requested, 1048576);
}

TEST(Writer, TraceTextRoundTripsThroughReader) {
  StringArena arena;
  std::vector<RawRecord> records;
  for (int i = 0; i < 10; ++i) {
    RawRecord rec;
    rec.pid = 50;
    rec.timestamp = 1000 + i * 100;
    rec.call = i % 2 == 0 ? "read" : "write";
    rec.args = arena.concat({"3</data/file>, \"\"..., ", std::to_string(512 * (i + 1))});
    rec.retval = 512 * (i + 1);
    rec.duration = 10 + i;
    records.push_back(rec);
  }
  const auto result = read_trace_text(format_trace(records));
  EXPECT_TRUE(result.warnings.empty());
  ASSERT_EQ(result.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(result.records[i].call, records[i].call);
    EXPECT_EQ(result.records[i].retval, records[i].retval);
    EXPECT_EQ(result.records[i].duration, records[i].duration);
    EXPECT_EQ(result.records[i].path, "/data/file");
  }
}

}  // namespace
}  // namespace st::strace
