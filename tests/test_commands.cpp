#include "iosim/commands.hpp"

#include <gtest/gtest.h>

#include "dfg/builder.hpp"
#include "dfg/stats.hpp"
#include "model/event_log.hpp"
#include "model/from_strace.hpp"

namespace st::iosim {
namespace {

model::EventLog ca() { return make_ls_traces().to_event_log(); }
model::EventLog cb() { return make_ls_l_traces().to_event_log(); }
model::EventLog cx() { return model::EventLog::merge(ca(), cb()); }

TEST(Commands, ThreeCasesPerCommandWithPaperRids) {
  const auto log = ca();
  ASSERT_EQ(log.case_count(), 3u);
  EXPECT_NE(log.find_case(model::CaseId{"a", "host1", 9042}), nullptr);
  EXPECT_NE(log.find_case(model::CaseId{"a", "host1", 9043}), nullptr);
  EXPECT_NE(log.find_case(model::CaseId{"a", "host1", 9045}), nullptr);
}

TEST(Commands, LsLRids) {
  const auto log = cb();
  EXPECT_NE(log.find_case(model::CaseId{"b", "host1", 9157}), nullptr);
  EXPECT_NE(log.find_case(model::CaseId{"b", "host1", 9158}), nullptr);
  EXPECT_NE(log.find_case(model::CaseId{"b", "host1", 9160}), nullptr);
}

TEST(Commands, EventCountsMatchFig2) {
  EXPECT_EQ(ca().total_events(), 3u * 8u);   // 8 lines in Fig. 2a
  EXPECT_EQ(cb().total_events(), 3u * 17u);  // 17 lines in Fig. 2b
}

TEST(Commands, PidDiffersFromRid) {
  const auto log = ca();  // find_case returns a pointer into this log
  const auto* c = log.find_case(model::CaseId{"a", "host1", 9042});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->events().front().pid, 9054u);  // the forked child of Fig. 2a
}

// Byte totals of Fig. 3 are exact: they derive from the printed traces.
TEST(Commands, Fig3ByteStatisticsExact) {
  const auto log = cx();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto stats = dfg::IoStatistics::compute(log, f);

  EXPECT_EQ(stats.find("read\n/usr/lib")->bytes, 14976);            // 14.98 KB
  EXPECT_EQ(stats.find("read\n/proc/filesystems")->bytes, 2868);    // 2.87 KB
  EXPECT_EQ(stats.find("read\n/etc/locale.alias")->bytes, 17976);   // 17.98 KB
  EXPECT_EQ(stats.find("read\n/etc/nsswitch.conf")->bytes, 1626);   // 1.63 KB
  EXPECT_EQ(stats.find("read\n/etc/passwd")->bytes, 4836);          // 4.84 KB
  EXPECT_EQ(stats.find("read\n/etc/group")->bytes, 2616);           // 2.62 KB
  EXPECT_EQ(stats.find("read\n/usr/share")->bytes, 11241);          // 11.24 KB
  EXPECT_EQ(stats.find("write\n/dev/pts")->bytes, 753);             // 0.75 KB
}

TEST(Commands, Fig3bEdgeFrequencies) {
  const auto g = dfg::build_serial(ca(), model::Mapping::call_top_dirs(2));
  EXPECT_EQ(g.edge_count(dfg::Dfg::start_node(), "read\n/usr/lib"), 3u);
  EXPECT_EQ(g.edge_count("read\n/usr/lib", "read\n/usr/lib"), 6u);
  EXPECT_EQ(g.edge_count("read\n/usr/lib", "read\n/proc/filesystems"), 3u);
  EXPECT_EQ(g.edge_count("read\n/proc/filesystems", "read\n/proc/filesystems"), 3u);
  EXPECT_EQ(g.edge_count("read\n/proc/filesystems", "read\n/etc/locale.alias"), 3u);
  EXPECT_EQ(g.edge_count("read\n/etc/locale.alias", "read\n/etc/locale.alias"), 3u);
  EXPECT_EQ(g.edge_count("read\n/etc/locale.alias", "write\n/dev/pts"), 3u);
  EXPECT_EQ(g.edge_count("write\n/dev/pts", dfg::Dfg::end_node()), 3u);
  EXPECT_EQ(g.activities().size(), 4u);
}

TEST(Commands, Fig3cHasLsLExclusiveActivities) {
  const auto g = dfg::build_serial(cb(), model::Mapping::call_top_dirs(2));
  EXPECT_TRUE(g.has_node("read\n/etc/nsswitch.conf"));
  EXPECT_TRUE(g.has_node("read\n/etc/passwd"));
  EXPECT_TRUE(g.has_node("read\n/etc/group"));
  EXPECT_TRUE(g.has_node("read\n/usr/share"));
  EXPECT_EQ(g.activities().size(), 8u);
  // Second /usr/lib visit (zoneinfo reads come later): write -> read edge.
  EXPECT_EQ(g.edge_count("write\n/dev/pts", "read\n/usr/share"), 3u);
  EXPECT_EQ(g.edge_count("write\n/dev/pts", "write\n/dev/pts"), 6u);
}

TEST(Commands, Fig3dUnionCountsAreSums) {
  const auto f = model::Mapping::call_top_dirs(2);
  auto merged = dfg::build_serial(ca(), f);
  merged.merge(dfg::build_serial(cb(), f));
  const auto whole = dfg::build_serial(cx(), f);
  EXPECT_EQ(merged, whole);
  EXPECT_EQ(whole.edge_count(dfg::Dfg::start_node(), "read\n/usr/lib"), 6u);
  EXPECT_EQ(whole.edge_count("read\n/usr/lib", "read\n/usr/lib"), 12u);
}

TEST(Commands, AllCasesOfOneCommandShareOneTraceVariant) {
  // L(Ca) = { <...>^3 }: all three cases map to the same trace.
  const auto al = model::ActivityLog::build(ca(), model::Mapping::call_top_dirs(2));
  ASSERT_EQ(al.variants().size(), 1u);
  EXPECT_EQ(al.variants().begin()->second, 3u);
}

TEST(Commands, StaggerProducesCrossCaseOverlap) {
  const auto stats =
      dfg::IoStatistics::compute(cb(), model::Mapping::call_top_dirs(2));
  // With 120 us stagger and ~200 us events, neighbouring ranks overlap
  // (Fig. 5 reports max-concurrency 2 for read:/usr/lib on Cb).
  EXPECT_GE(stats.find("read\n/usr/lib")->max_concurrency, 2u);
}

TEST(Commands, Fig4FilteredMapping) {
  const auto f = model::Mapping::call_last_components(2).filtered_fp("/usr/lib");
  const auto g = dfg::build_serial(cx(), f);
  EXPECT_TRUE(g.has_node("read\nx86_64-linux-gnu/libselinux.so.1"));
  EXPECT_TRUE(g.has_node("read\nx86_64-linux-gnu/libc.so.6"));
  EXPECT_TRUE(g.has_node("read\nx86_64-linux-gnu/libpcre2-8.so.0.10.4"));
  EXPECT_EQ(g.activities().size(), 3u);  // only /usr/lib accesses survive
  // Each case contributes one visit to each library: 6 edges from start.
  EXPECT_EQ(g.edge_count(dfg::Dfg::start_node(), "read\nx86_64-linux-gnu/libselinux.so.1"),
            6u);
}

TEST(Commands, CustomOptionsRespected) {
  CommandTraceOptions opt;
  opt.processes = 5;
  opt.base_rid = 100;
  opt.host = "hostX";
  const auto log = make_ls_traces(opt).to_event_log();
  EXPECT_EQ(log.case_count(), 5u);
  EXPECT_NE(log.find_case(model::CaseId{"a", "hostX", 100}), nullptr);
}

TEST(Commands, TracesRoundTripThroughFilesAndParser) {
  const auto dir = ::testing::TempDir() + "/cmd_traces";
  make_ls_traces().write_files(dir);
  const std::vector<std::string> files = {
      dir + "/a_host1_9042.st", dir + "/a_host1_9043.st", dir + "/a_host1_9045.st"};
  const auto log = model::event_log_from_files(files);
  EXPECT_EQ(log.case_count(), 3u);
  EXPECT_EQ(log.total_events(), 24u);
  const auto stats = dfg::IoStatistics::compute(log, model::Mapping::call_top_dirs(2));
  EXPECT_EQ(stats.find("read\n/usr/lib")->bytes, 832 * 3 * 3);
}

}  // namespace
}  // namespace st::iosim
