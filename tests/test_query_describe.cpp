// Query::describe() coverage: every combination of the five
// restriction kinds renders as clean space-joined clauses — no
// trailing separator (the old build-then-pop_back formatting), no
// double spaces, clauses in the documented order.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/query.hpp"

namespace st::model {
namespace {

struct Restriction {
  std::string clause;                       // expected describe() fragment
  Query (*add)(const Query&);               // applies the restriction
};

const std::vector<Restriction>& restrictions() {
  static const std::vector<Restriction> r = {
      {"fp~/p/scratch", [](const Query& q) { return q.fp_contains("/p/scratch"); }},
      {"calls{read,write}", [](const Query& q) { return q.calls({"read", "write"}); }},
      {"t[10,200)", [](const Query& q) { return q.between(10, 200); }},
      {"cids(2)", [](const Query& q) { return q.cids({"a", "b"}); }},
      {"hosts(1)", [](const Query& q) { return q.hosts({"node1"}); }},
  };
  return r;
}

TEST(QueryDescribe, EveryRestrictionCombination) {
  const auto& r = restrictions();
  for (unsigned mask = 0; mask < (1u << r.size()); ++mask) {
    Query q;
    std::string expected;
    for (std::size_t i = 0; i < r.size(); ++i) {
      if ((mask & (1u << i)) == 0) continue;
      q = r[i].add(q);
      if (!expected.empty()) expected += ' ';
      expected += r[i].clause;
    }
    if (expected.empty()) expected = "all";
    EXPECT_EQ(q.describe(), expected) << "mask " << mask;
  }
}

TEST(QueryDescribe, NoSeparatorArtifacts) {
  const auto& r = restrictions();
  for (unsigned mask = 0; mask < (1u << r.size()); ++mask) {
    Query q;
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (mask & (1u << i)) q = r[i].add(q);
    }
    const std::string d = q.describe();
    ASSERT_FALSE(d.empty());
    EXPECT_NE(d.front(), ' ') << "mask " << mask << ": " << testing::PrintToString(d);
    EXPECT_NE(d.back(), ' ') << "mask " << mask << ": " << testing::PrintToString(d);
    EXPECT_EQ(d.find("  "), std::string::npos) << "mask " << mask << ": "
                                               << testing::PrintToString(d);
  }
}

TEST(QueryDescribe, MultipleFpClausesStayOrdered) {
  const auto q = Query().fp_contains("/p").fp_contains("ssf").calls({"read"});
  EXPECT_EQ(q.describe(), "fp~/p fp~ssf calls{read}");
}

TEST(QueryDescribe, SingleRestrictionHasNoPadding) {
  EXPECT_EQ(Query().hosts({"n1", "n2", "n3"}).describe(), "hosts(3)");
  EXPECT_EQ(Query().between(0, 100).describe(), "t[0,100)");
  EXPECT_EQ(Query().describe(), "all");
}

TEST(QueryDescribe, CallFamiliesKeepBuilderOrder) {
  // describe() reports the families as given, not the compiled sorted
  // variant expansion used for matching.
  EXPECT_EQ(Query().calls({"write", "read"}).describe(), "calls{write,read}");
}

}  // namespace
}  // namespace st::model
