// Query::describe() coverage: every combination of the five
// restriction kinds renders as clean space-joined clauses in the
// canonical grammar (ISSUE 9) — no trailing separator, no double
// spaces, clauses in the documented order, set members sorted and
// listed in full (the string doubles as the Catalog cache fingerprint
// and the serve wire format, so it must carry the whole restriction,
// not a summary count).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/query.hpp"

namespace st::model {
namespace {

struct Restriction {
  std::string clause;                       // expected describe() fragment
  Query (*add)(const Query&);               // applies the restriction
};

const std::vector<Restriction>& restrictions() {
  static const std::vector<Restriction> r = {
      {"fp~/p/scratch", [](const Query& q) { return q.fp_contains("/p/scratch"); }},
      {"calls{read,write}", [](const Query& q) { return q.calls({"read", "write"}); }},
      {"t[10,200)", [](const Query& q) { return q.between(10, 200); }},
      {"cids{a,b}", [](const Query& q) { return q.cids({"a", "b"}); }},
      {"hosts{node1}", [](const Query& q) { return q.hosts({"node1"}); }},
  };
  return r;
}

TEST(QueryDescribe, EveryRestrictionCombination) {
  const auto& r = restrictions();
  for (unsigned mask = 0; mask < (1u << r.size()); ++mask) {
    Query q;
    std::string expected;
    for (std::size_t i = 0; i < r.size(); ++i) {
      if ((mask & (1u << i)) == 0) continue;
      q = r[i].add(q);
      if (!expected.empty()) expected += ' ';
      expected += r[i].clause;
    }
    if (expected.empty()) expected = "all";
    EXPECT_EQ(q.describe(), expected) << "mask " << mask;
  }
}

TEST(QueryDescribe, NoSeparatorArtifacts) {
  const auto& r = restrictions();
  for (unsigned mask = 0; mask < (1u << r.size()); ++mask) {
    Query q;
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (mask & (1u << i)) q = r[i].add(q);
    }
    const std::string d = q.describe();
    ASSERT_FALSE(d.empty());
    EXPECT_NE(d.front(), ' ') << "mask " << mask << ": " << testing::PrintToString(d);
    EXPECT_NE(d.back(), ' ') << "mask " << mask << ": " << testing::PrintToString(d);
    EXPECT_EQ(d.find("  "), std::string::npos) << "mask " << mask << ": "
                                               << testing::PrintToString(d);
  }
}

TEST(QueryDescribe, MultipleFpClausesAreSortedAndDeduplicated) {
  // Conjunctive restrictions are order-insensitive, so the canonical
  // form sorts them — builder order must not leak into the fingerprint.
  const auto q = Query().fp_contains("ssf").fp_contains("/p").fp_contains("ssf").calls({"read"});
  EXPECT_EQ(q.describe(), "fp~/p fp~ssf calls{read}");
}

TEST(QueryDescribe, SingleRestrictionHasNoPadding) {
  EXPECT_EQ(Query().hosts({"n1", "n2", "n3"}).describe(), "hosts{n1,n2,n3}");
  EXPECT_EQ(Query().between(0, 100).describe(), "t[0,100)");
  EXPECT_EQ(Query().describe(), "all");
}

TEST(QueryDescribe, CallFamiliesAreCanonicallySorted) {
  // Same matching behavior -> same fingerprint, regardless of the
  // order the builder saw the families in.
  EXPECT_EQ(Query().calls({"write", "read"}).describe(), "calls{read,write}");
  EXPECT_EQ(Query().calls({"write", "read"}).describe(),
            Query().calls({"read"}).calls({"write"}).describe());
}

TEST(QueryDescribe, EmptySetsRenderAsEmptyBraces) {
  // cids{} is a real restriction (matches no case) and must stay
  // distinguishable from the absent clause.
  EXPECT_EQ(Query().cids({}).describe(), "cids{}");
  EXPECT_EQ(Query().hosts({}).describe(), "hosts{}");
}

TEST(QueryDescribe, UnsafeAtomsRenderQuoted) {
  EXPECT_EQ(Query().fp_contains("with space").describe(), "fp~\"with space\"");
  EXPECT_EQ(Query().fp_contains("a\"b").describe(), "fp~\"a\\\"b\"");
  EXPECT_EQ(Query().fp_contains("back\\slash").describe(), "fp~\"back\\\\slash\"");
  EXPECT_EQ(Query().fp_contains(std::string("nul\0byte", 8)).describe(),
            "fp~\"nul\\x00byte\"");
  EXPECT_EQ(Query().fp_contains("").describe(), "fp~\"\"");
  EXPECT_EQ(Query().cids({"a,b"}).describe(), "cids{\"a,b\"}");
}

}  // namespace
}  // namespace st::model
