#include <gtest/gtest.h>

#include "dfg/coloring.hpp"
#include "dfg/diff.hpp"
#include "testing_util.hpp"

namespace st::dfg {
namespace {

Dfg green_graph() {
  Dfg g;
  g.add_trace({"shared", "green-only"}, 2);
  return g;
}

Dfg red_graph() {
  Dfg g;
  g.add_trace({"shared", "red-only"}, 2);
  return g;
}

TEST(GraphDiff, NodePartition) {
  const GraphDiff diff(green_graph(), red_graph());
  EXPECT_EQ(diff.classify_node("green-only"), PartitionClass::GreenOnly);
  EXPECT_EQ(diff.classify_node("red-only"), PartitionClass::RedOnly);
  EXPECT_EQ(diff.classify_node("shared"), PartitionClass::Common);
  // Start/end markers occur in both graphs.
  EXPECT_EQ(diff.classify_node(Dfg::start_node()), PartitionClass::Common);
}

TEST(GraphDiff, NodeSets) {
  const GraphDiff diff(green_graph(), red_graph());
  EXPECT_EQ(diff.green_nodes(), std::set<model::Activity>{"green-only"});
  EXPECT_EQ(diff.red_nodes(), std::set<model::Activity>{"red-only"});
  EXPECT_TRUE(diff.common_nodes().contains("shared"));
}

TEST(GraphDiff, EdgePartition) {
  const GraphDiff diff(green_graph(), red_graph());
  EXPECT_EQ(diff.classify_edge("shared", "green-only"), PartitionClass::GreenOnly);
  EXPECT_EQ(diff.classify_edge("shared", "red-only"), PartitionClass::RedOnly);
  EXPECT_EQ(diff.classify_edge(Dfg::start_node(), "shared"), PartitionClass::Common);
}

TEST(GraphDiff, UnknownElementsClassifyCommon) {
  // Elements in neither graph default to Common (uncolored) — they can
  // only come from the combined graph, where they'd be in one subset.
  const GraphDiff diff(green_graph(), red_graph());
  EXPECT_EQ(diff.classify_node("never-seen"), PartitionClass::Common);
}

TEST(GraphDiff, Fig3dShape) {
  // ls (green) vs ls -l (red): the only green-exclusive element in
  // Fig. 3d is the edge read:/etc/locale.alias -> write:/dev/pts.
  Dfg ls;
  ls.add_trace({"read\n/usr/lib", "read\n/etc/locale.alias", "write\n/dev/pts"}, 3);
  Dfg lsl;
  lsl.add_trace({"read\n/usr/lib", "read\n/etc/locale.alias", "read\n/etc/passwd",
                 "write\n/dev/pts"},
                3);
  const GraphDiff diff(ls, lsl);
  EXPECT_TRUE(diff.green_nodes().empty());  // every ls activity also in ls -l
  EXPECT_EQ(diff.red_nodes(), std::set<model::Activity>{"read\n/etc/passwd"});
  EXPECT_TRUE(diff.green_edges().contains({"read\n/etc/locale.alias", "write\n/dev/pts"}));
  EXPECT_TRUE(diff.red_edges().contains({"read\n/etc/locale.alias", "read\n/etc/passwd"}));
}

// ---- PartitionColoring ---------------------------------------------------

TEST(PartitionColoring, StylesFollowDiff) {
  const PartitionColoring styler(green_graph(), red_graph());
  EXPECT_EQ(styler.node_style("green-only").tag, "GREEN");
  EXPECT_EQ(styler.node_style("red-only").tag, "RED");
  EXPECT_TRUE(styler.node_style("shared").tag.empty());
  EXPECT_TRUE(styler.node_style("shared").fill.empty());
}

TEST(PartitionColoring, EdgeColors) {
  const PartitionColoring styler(green_graph(), red_graph());
  EXPECT_EQ(styler.edge_color("shared", "green-only"), "green");
  EXPECT_EQ(styler.edge_color("shared", "red-only"), "red");
  EXPECT_EQ(styler.edge_color(Dfg::start_node(), "shared"), "");
}

// ---- StatisticsColoring ----------------------------------------------------

TEST(StatisticsColoring, BusiestActivityIsDarkest) {
  model::EventLog log;
  log.add_case(testing::make_case("a", 1,
                                  {testing::ev("slow", "/f", 0, 900, 10),
                                   testing::ev("fast", "/f", 1000, 100, 10)}));
  const auto stats = IoStatistics::compute(log, model::Mapping::call_only());
  const StatisticsColoring styler(stats);

  const auto slow = styler.node_style("slow");
  const auto fast = styler.node_style("fast");
  ASSERT_FALSE(slow.fill.empty());
  ASSERT_FALSE(fast.fill.empty());
  // Max rel_dur maps to the full steel-blue shade.
  EXPECT_EQ(slow.fill, "#1F77B4");
  EXPECT_NE(fast.fill, slow.fill);
  // High-load nodes flip to white text for readability.
  EXPECT_EQ(slow.fontcolor, "white");
  EXPECT_EQ(fast.fontcolor, "black");
  EXPECT_EQ(slow.tag, "load=0.90");
}

TEST(StatisticsColoring, UnknownActivityUnstyled) {
  model::EventLog log;
  log.add_case(testing::make_case("a", 1, {testing::ev("x", "/f", 0, 10, 1)}));
  const auto stats = IoStatistics::compute(log, model::Mapping::call_only());
  const StatisticsColoring styler(stats);
  EXPECT_TRUE(styler.node_style("unknown").fill.empty());
  EXPECT_TRUE(styler.edge_color("x", "x").empty());
}

}  // namespace
}  // namespace st::dfg
