// Shared helpers for building small synthetic event logs in tests.
#pragma once

#include <string>
#include <vector>

#include "model/event_log.hpp"

namespace st::testing {

/// Compact event builder: ev("read", "/usr/lib/x/y.so", start, dur, size).
inline model::Event ev(std::string call, std::string fp, Micros start, Micros dur,
                       std::int64_t size = -1) {
  model::Event e;
  e.cid = "t";
  e.host = "host1";
  e.rid = 1;
  e.pid = 100;
  e.call = std::move(call);
  e.fp = std::move(fp);
  e.start = start;
  e.dur = dur;
  e.size = size;
  return e;
}

inline model::Case make_case(std::string cid, std::uint64_t rid, std::vector<model::Event> events,
                             std::string host = "host1") {
  for (auto& e : events) {
    e.cid = cid;
    e.host = host;
    e.rid = rid;
    e.pid = rid + 12;
  }
  return model::Case(model::CaseId{std::move(cid), std::move(host), rid}, std::move(events));
}

}  // namespace st::testing
