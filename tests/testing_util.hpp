// Shared helpers for building small synthetic event logs in tests.
//
// Event string fields are std::string_views; hand-built test events
// intern their strings into a process-lifetime arena (test_arena), so
// the views outlive every log a test can construct and no test needs
// to thread ownership around.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "model/event_log.hpp"
#include "strace/arena.hpp"

namespace st::testing {

/// Process-lifetime arena backing the string fields of hand-built test
/// events. Never freed (tests exit anyway); single-threaded use only.
inline strace::StringArena& test_arena() {
  static strace::StringArena arena;
  return arena;
}

/// Interns `s` for the remaining lifetime of the test process.
inline std::string_view intern(std::string_view s) { return test_arena().intern(s); }

/// Compact event builder: ev("read", "/usr/lib/x/y.so", start, dur, size).
inline model::Event ev(std::string_view call, std::string_view fp, Micros start, Micros dur,
                       std::int64_t size = -1) {
  model::Event e;
  e.cid = "t";
  e.host = "host1";
  e.rid = 1;
  e.pid = 100;
  e.call = intern(call);
  e.fp = intern(fp);
  e.start = start;
  e.dur = dur;
  e.size = size;
  return e;
}

inline model::Case make_case(std::string cid, std::uint64_t rid, std::vector<model::Event> events,
                             std::string host = "host1") {
  const std::string_view cid_view = intern(cid);
  const std::string_view host_view = intern(host);
  for (auto& e : events) {
    e.cid = cid_view;
    e.host = host_view;
    e.rid = rid;
    e.pid = rid + 12;
  }
  return model::Case(model::CaseId{std::move(cid), std::move(host), rid}, std::move(events));
}

}  // namespace st::testing
