#include <gtest/gtest.h>

#include "model/event_log.hpp"
#include "model/from_strace.hpp"
#include "strace/parser.hpp"
#include "support/errors.hpp"
#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;
using testing::make_case;

// ---- event_from_record (Sec. III extraction rules) --------------------

strace::RawRecord complete_read(std::int64_t retval) {
  return *strace::parse_line("9054  08:55:54.153994 read(3</p/f>, ..., 1024) = " +
                             std::to_string(retval) + " <0.000052>");
}

TEST(EventFromRecord, CopiesIdentityFromFileName) {
  const strace::TraceFileId id{"a", "host1", 9042};
  const auto e = event_from_record(id, complete_read(478));
  ASSERT_TRUE(e);
  EXPECT_EQ(e->cid, "a");
  EXPECT_EQ(e->host, "host1");
  EXPECT_EQ(e->rid, 9042u);
  EXPECT_EQ(e->pid, 9054u);  // differs from rid: forked child (Sec. III)
}

TEST(EventFromRecord, SizeFromReturnValueForTransfers) {
  const strace::TraceFileId id{"a", "h", 1};
  EXPECT_EQ(event_from_record(id, complete_read(478))->size, 478);
  EXPECT_EQ(event_from_record(id, complete_read(0))->size, 0);
}

TEST(EventFromRecord, FailedTransferHasNoSize) {
  const strace::TraceFileId id{"a", "h", 1};
  auto rec = *strace::parse_line(
      "1  10:00:00.000000 read(3</p/f>, ..., 8) = -1 EAGAIN (x) <0.000001>");
  EXPECT_EQ(event_from_record(id, rec)->size, -1);
}

TEST(EventFromRecord, NonTransferCallHasNoSize) {
  const strace::TraceFileId id{"a", "h", 1};
  auto rec = *strace::parse_line(
      "1  10:00:00.000000 lseek(3</p/f>, 100, SEEK_SET) = 100 <0.000001>");
  const auto e = event_from_record(id, rec);
  ASSERT_TRUE(e);
  EXPECT_EQ(e->size, -1);  // lseek's return is an offset, not bytes moved
  EXPECT_FALSE(e->has_size());
}

TEST(EventFromRecord, SignalsAreNotEvents) {
  const strace::TraceFileId id{"a", "h", 1};
  auto rec = *strace::parse_line("1  10:00:00.000000 --- SIGCHLD {} ---");
  EXPECT_FALSE(event_from_record(id, rec));
}

TEST(EventFromRecord, MissingDurationBecomesZero) {
  const strace::TraceFileId id{"a", "h", 1};
  auto rec = *strace::parse_line("1  10:00:00.000000 close(3</p/f>) = 0");
  EXPECT_EQ(event_from_record(id, rec)->dur, 0);
}

// ---- Case --------------------------------------------------------------

TEST(Case, SortsEventsByStart) {
  auto c = make_case("a", 1, {ev("read", "/b", 300, 5), ev("read", "/a", 100, 5),
                              ev("write", "/c", 200, 5)});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.events()[0].fp, "/a");
  EXPECT_EQ(c.events()[1].fp, "/c");
  EXPECT_EQ(c.events()[2].fp, "/b");
}

TEST(Case, StableSortKeepsTiesInInputOrder) {
  auto c = make_case("a", 1, {ev("read", "/first", 100, 5), ev("read", "/second", 100, 5)});
  EXPECT_EQ(c.events()[0].fp, "/first");
  EXPECT_EQ(c.events()[1].fp, "/second");
}

TEST(Case, FilteredKeepsOrder) {
  auto c = make_case("a", 1, {ev("read", "/a", 100, 5), ev("write", "/b", 200, 5),
                              ev("read", "/c", 300, 5)});
  const auto reads = c.filtered([](const Event& e) { return e.call == "read"; });
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads.events()[0].fp, "/a");
  EXPECT_EQ(reads.events()[1].fp, "/c");
  EXPECT_EQ(reads.id(), c.id());
}

// ---- EventLog ------------------------------------------------------------

EventLog two_command_log() {
  EventLog log;
  log.add_case(make_case("a", 1, {ev("read", "/usr/lib/x", 0, 10, 832)}));
  log.add_case(make_case("a", 2, {ev("read", "/usr/lib/x", 5, 10, 832)}));
  log.add_case(make_case("b", 3, {ev("write", "/dev/pts/7", 20, 10, 50)}));
  return log;
}

TEST(EventLog, Counts) {
  const auto log = two_command_log();
  EXPECT_EQ(log.case_count(), 3u);
  EXPECT_EQ(log.total_events(), 3u);
}

TEST(EventLog, FindCase) {
  const auto log = two_command_log();
  ASSERT_NE(log.find_case(CaseId{"a", "host1", 2}), nullptr);
  EXPECT_EQ(log.find_case(CaseId{"z", "host1", 2}), nullptr);
}

TEST(EventLog, FilterFpKeepsMatchingEventsAndEmptyCases) {
  const auto filtered = two_command_log().filter_fp("/usr/lib");
  EXPECT_EQ(filtered.case_count(), 3u);  // cases survive, possibly empty
  EXPECT_EQ(filtered.total_events(), 2u);
}

TEST(EventLog, FilterCases) {
  const auto only_b =
      two_command_log().filter_cases([](const Case& c) { return c.id().cid == "b"; });
  EXPECT_EQ(only_b.case_count(), 1u);
}

TEST(EventLog, PartitionSplitsGreenRed) {
  const auto [green, red] =
      two_command_log().partition([](const Case& c) { return c.id().cid == "a"; });
  EXPECT_EQ(green.case_count(), 2u);
  EXPECT_EQ(red.case_count(), 1u);
}

TEST(EventLog, MergeUnionOfDisjointLogs) {
  EventLog a;
  a.add_case(make_case("a", 1, {ev("read", "/x", 0, 1)}));
  EventLog b;
  b.add_case(make_case("b", 2, {ev("read", "/y", 0, 1)}));
  const auto merged = EventLog::merge(a, b);
  EXPECT_EQ(merged.case_count(), 2u);
}

TEST(EventLog, MergeRejectsDuplicateCases) {
  EventLog a;
  a.add_case(make_case("a", 1, {ev("read", "/x", 0, 1)}));
  EXPECT_THROW((void)EventLog::merge(a, a), LogicError);
}

TEST(CaseId, ToStringMatchesFileConvention) {
  EXPECT_EQ((CaseId{"a", "host1", 9042}.to_string()), "a_host1_9042");
}

}  // namespace
}  // namespace st::model
