#include "dfg/render.hpp"

#include <gtest/gtest.h>

#include "dfg/builder.hpp"
#include "testing_util.hpp"

namespace st::dfg {
namespace {

using testing::ev;
using testing::make_case;

model::EventLog render_log() {
  model::EventLog log;
  log.add_case(make_case("a", 1,
                         {ev("read", "/usr/lib/a/x.so", 0, 100, 832),
                          ev("write", "/dev/pts/7", 200, 50, 50)}));
  return log;
}

TEST(RenderDot, ContainsDigraphStructure) {
  const auto log = render_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const Dfg g = build_serial(log, f);
  const auto dot = render_dot(g, nullptr, nullptr);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("read\\n/usr/lib"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(RenderDot, EdgeLabelsCarryCounts) {
  Dfg g;
  g.add_trace({"a", "a", "a"}, 3);  // two a->a transitions per trace
  const auto dot = render_dot(g, nullptr, nullptr);
  EXPECT_NE(dot.find("[label=\"6\"]"), std::string::npos);  // a->a self loop
}

TEST(RenderDot, StatsAppendLoadAndDr) {
  const auto log = render_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const Dfg g = build_serial(log, f);
  const auto stats = IoStatistics::compute(log, f);
  const auto dot = render_dot(g, &stats, nullptr);
  EXPECT_NE(dot.find("Load:"), std::string::npos);
  EXPECT_NE(dot.find("DR: "), std::string::npos);
}

TEST(RenderDot, StylerColorsApplied) {
  Dfg green;
  green.add_trace({"g"});
  Dfg red;
  red.add_trace({"r"});
  Dfg combined = green;
  combined.merge(red);
  const PartitionColoring styler(green, red);
  const auto dot = render_dot(combined, nullptr, &styler);
  EXPECT_NE(dot.find("#C8E6C9"), std::string::npos);  // green fill
  EXPECT_NE(dot.find("#FFCDD2"), std::string::npos);  // red fill
  EXPECT_NE(dot.find("color=green"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(RenderDot, QuotesEscapedInLabels) {
  Dfg g;
  g.add_trace({"weird\"name"});
  const auto dot = render_dot(g, nullptr, nullptr);
  EXPECT_NE(dot.find("weird\\\"name"), std::string::npos);
}

TEST(RenderDot, GraphNameFromOptions) {
  Dfg g;
  g.add_trace({"a"});
  RenderOptions opts;
  opts.graph_name = "G[L(Ca)]";
  const auto dot = render_dot(g, nullptr, nullptr, opts);
  EXPECT_NE(dot.find("G[L(Ca)]"), std::string::npos);
}

TEST(RenderAscii, DeterministicAndSorted) {
  const auto log = render_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const Dfg g = build_serial(log, f);
  const auto stats = IoStatistics::compute(log, f);
  const auto a1 = render_ascii(g, &stats, nullptr);
  const auto a2 = render_ascii(g, &stats, nullptr);
  EXPECT_EQ(a1, a2);
  // One NODE line per activity, flattened to a single line.
  EXPECT_NE(a1.find("NODE read /usr/lib | Load:"), std::string::npos);
  EXPECT_NE(a1.find("EDGE read /usr/lib -> write /dev/pts [1]"), std::string::npos);
  EXPECT_NE(a1.find("EDGE ● -> read /usr/lib [1]"), std::string::npos);
  EXPECT_NE(a1.find("EDGE write /dev/pts -> ■ [1]"), std::string::npos);
}

TEST(RenderAscii, RanksShownWhenEnabled) {
  const auto log = render_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const Dfg g = build_serial(log, f);
  const auto stats = IoStatistics::compute(log, f);
  RenderOptions opts;
  opts.show_ranks = true;
  const auto text = render_ascii(g, &stats, nullptr, opts);
  EXPECT_NE(text.find("Ranks: 1"), std::string::npos);
}

TEST(RenderAscii, PartitionTagsShown) {
  Dfg green;
  green.add_trace({"g"});
  Dfg red;
  red.add_trace({"r"});
  Dfg combined = green;
  combined.merge(red);
  const PartitionColoring styler(green, red);
  const auto text = render_ascii(combined, nullptr, &styler);
  EXPECT_NE(text.find("NODE g | GREEN"), std::string::npos);
  EXPECT_NE(text.find("NODE r | RED"), std::string::npos);
}

TEST(RenderTimeline, EmptyInput) {
  EXPECT_EQ(render_timeline({}), "(empty timeline)\n");
}

TEST(RenderTimeline, OneRowPerCaseWithMaxConcurrency) {
  std::vector<TimelineEntry> entries = {
      {model::CaseId{"b", "host1", 9157}, {0, 250}},
      {model::CaseId{"b", "host1", 9158}, {200, 450}},
      {model::CaseId{"b", "host1", 9160}, {460, 700}},
  };
  const auto text = render_timeline(entries, 40);
  EXPECT_NE(text.find("b_host1_9157 |"), std::string::npos);
  EXPECT_NE(text.find("b_host1_9158 |"), std::string::npos);
  EXPECT_NE(text.find("b_host1_9160 |"), std::string::npos);
  EXPECT_NE(text.find("max-concurrency: 2"), std::string::npos);
  EXPECT_NE(text.find("3 events"), std::string::npos);
}

TEST(RenderTimeline, BarsCoverIntervalExtent) {
  std::vector<TimelineEntry> entries = {{model::CaseId{"x", "h", 1}, {0, 100}}};
  const auto text = render_timeline(entries, 10);
  // A single full-span interval renders as all '=' in its row.
  EXPECT_NE(text.find("|==========|"), std::string::npos);
}

}  // namespace
}  // namespace st::dfg
