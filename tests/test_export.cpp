#include "dfg/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dfg/builder.hpp"
#include "testing_util.hpp"

namespace st::dfg {
namespace {

using testing::ev;
using testing::make_case;

model::EventLog sample() {
  model::EventLog log;
  log.add_case(make_case("a", 1,
                         {ev("read", "/usr/lib/x.so", 0, 100, 832),
                          ev("write", "/dev/pts/7", 200, 50, 50)}));
  return log;
}

TEST(CsvField, PlainUnquoted) { EXPECT_EQ(csv_field("abc"), "abc"); }

TEST(CsvField, CommaQuoted) { EXPECT_EQ(csv_field("a,b"), "\"a,b\""); }

TEST(CsvField, QuoteDoubled) { EXPECT_EQ(csv_field("a\"b"), "\"a\"\"b\""); }

TEST(CsvField, NewlineQuoted) { EXPECT_EQ(csv_field("a\nb"), "\"a\nb\""); }

TEST(StatsCsv, HeaderAndRows) {
  const auto f = model::Mapping::call_top_dirs(2);
  const auto stats = IoStatistics::compute(sample(), f);
  const std::string csv = stats_to_csv(stats);

  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "activity,events,rel_dur,total_dur_us,bytes,mean_rate_bps,max_concurrency,ranks");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2u);
  EXPECT_NE(csv.find("read /usr/lib,1,"), std::string::npos);
  EXPECT_NE(csv.find(",832,"), std::string::npos);
}

TEST(StatsCsv, ActivitiesWithoutBytesHaveEmptyField) {
  model::EventLog log;
  log.add_case(make_case("a", 1, {ev("openat", "/p/f", 0, 25, -1)}));
  const auto stats = IoStatistics::compute(log, model::Mapping::call_only());
  const std::string csv = stats_to_csv(stats);
  // openat,1,rel,dur,<empty bytes>,<empty rate>,...
  EXPECT_NE(csv.find("openat,1,1.000000,25,,,"), std::string::npos);
}

TEST(EdgesCsv, CountsAndMarkers) {
  Dfg g;
  g.add_trace({"a", "b"}, 3);
  const std::string csv = edges_to_csv(g);
  EXPECT_NE(csv.find("a,b,3"), std::string::npos);
  EXPECT_NE(csv.find("●,a,3"), std::string::npos);
  EXPECT_NE(csv.find("b,■,3"), std::string::npos);
}

TEST(EdgesCsv, ActivityNewlinesFlattened) {
  Dfg g;
  g.add_trace({"read\n/usr/lib"});
  const std::string csv = edges_to_csv(g);
  EXPECT_NE(csv.find("read /usr/lib"), std::string::npos);
  EXPECT_EQ(csv.find("read\n/usr"), std::string::npos);
}

TEST(EdgeStatsCsv, GapColumns) {
  model::EventLog log;
  log.add_case(make_case("c", 1, {ev("a", "", 0, 10), ev("b", "", 30, 10)}));
  const auto stats = EdgeStatistics::compute(log, model::Mapping::call_only());
  const std::string csv = edge_stats_to_csv(stats);
  EXPECT_NE(csv.find("from,to,count,mean_gap_us,max_gap_us,overlapped"), std::string::npos);
  EXPECT_NE(csv.find("a,b,1,20.0,20,0"), std::string::npos);
}

TEST(Csv, RowCountsMatchGraph) {
  const auto f = model::Mapping::call_top_dirs(2);
  const auto log = sample();
  const auto g = build_serial(log, f);
  const std::string csv = edges_to_csv(g);
  const auto lines = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 1 + g.edges().size());  // header + one row per edge
}

}  // namespace
}  // namespace st::dfg
