// Randomized property suites over the whole pipeline:
//   - strace record -> writer -> parser round trip,
//   - event log -> elog -> event log round trip,
//   - DFG structural invariants (flow conservation) on random logs,
//   - serial == parallel == merged-partition DFG construction,
//   - interleaved writer round trip on random multi-pid schedules.
// Each property runs under several seeds via TEST_P.
#include <gtest/gtest.h>

#include <sstream>

#include "dfg/builder.hpp"
#include "dfg/validate.hpp"
#include "elog/store.hpp"
#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"
#include "support/rng.hpp"
#include "testing_util.hpp"

namespace st {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808));

// ---- random generators -------------------------------------------------

std::string random_path(Xoshiro256& rng) {
  static const char* kRoots[] = {"/p/scratch", "/p/home", "/p/software", "/usr/lib", "/etc",
                                 "/dev/shm"};
  std::string path = kRoots[rng.below(6)];
  const std::size_t depth = 1 + rng.below(3);
  for (std::size_t i = 0; i < depth; ++i) {
    path += "/d" + std::to_string(rng.below(5));
  }
  return path;
}

/// Arena for the synthesized record strings; outlives every record a
/// test builds.
strace::StringArena& record_arena() {
  static strace::StringArena arena;
  return arena;
}

strace::RawRecord random_record(Xoshiro256& rng, std::uint64_t pid, Micros at) {
  static const char* kCalls[] = {"read", "write", "pread64", "pwrite64", "lseek", "openat"};
  strace::StringArena& arena = record_arena();
  strace::RawRecord rec;
  rec.pid = pid;
  rec.timestamp = at;
  rec.call = kCalls[rng.below(6)];
  rec.duration = static_cast<Micros>(1 + rng.below(500));
  const std::string path = random_path(rng);
  rec.path = arena.intern(path);
  if (rec.call == "openat") {
    rec.args = arena.concat({"AT_FDCWD, \"", path, "\", O_RDONLY"});
    rec.retval = static_cast<std::int64_t>(3 + rng.below(20));
  } else if (rec.call == "lseek") {
    const auto offset = static_cast<std::int64_t>(rng.below(1 << 30));
    rec.args = arena.concat({"3<", path, ">, ", std::to_string(offset), ", SEEK_SET"});
    rec.retval = offset;
  } else {
    const auto bytes = static_cast<std::int64_t>(rng.below(1 << 22));
    rec.args = arena.concat({"3<", path, ">, \"\"..., ", std::to_string(bytes)});
    rec.retval = bytes;
    rec.requested = bytes;
  }
  return rec;
}

model::EventLog random_event_log(Xoshiro256& rng, std::size_t max_cases) {
  model::EventLog log;
  const std::size_t cases = 1 + rng.below(max_cases);
  for (std::size_t c = 0; c < cases; ++c) {
    std::vector<model::Event> events;
    const std::size_t n = rng.below(60);
    Micros t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      auto e = testing::ev("", "", 0, 0);
      static const char* kCalls[] = {"read", "write", "openat", "lseek"};
      e.call = kCalls[rng.below(4)];
      e.fp = testing::intern(random_path(rng));
      e.start = t;
      e.dur = static_cast<Micros>(rng.below(300));
      e.size = rng.below(4) == 0 ? -1 : static_cast<std::int64_t>(rng.below(1 << 20));
      t += static_cast<Micros>(rng.below(100));
      events.push_back(std::move(e));
    }
    log.add_case(testing::make_case("p", c + 1, std::move(events)));
  }
  return log;
}

// ---- properties ----------------------------------------------------------

TEST_P(PipelineProperty, RecordWriterParserRoundTrip) {
  Xoshiro256 rng(GetParam());
  Micros t = 0;
  for (int i = 0; i < 200; ++i) {
    t += static_cast<Micros>(rng.below(1000));
    const auto rec = random_record(rng, 1 + rng.below(4), t);
    const std::string line = strace::format_record(rec);  // must outlive the record's views
    const auto reparsed = strace::parse_line(line);
    ASSERT_TRUE(reparsed) << line;
    EXPECT_EQ(reparsed->pid, rec.pid);
    EXPECT_EQ(reparsed->timestamp, rec.timestamp);
    EXPECT_EQ(reparsed->call, rec.call);
    EXPECT_EQ(reparsed->retval, rec.retval);
    EXPECT_EQ(reparsed->duration, rec.duration);
    EXPECT_EQ(reparsed->path, rec.path);
  }
}

TEST_P(PipelineProperty, ElogRoundTripPreservesEverything) {
  Xoshiro256 rng(GetParam());
  const auto log = random_event_log(rng, 12);
  std::stringstream buf;
  elog::write_event_log(buf, log);
  const auto reloaded = elog::read_event_log(buf);
  ASSERT_EQ(reloaded.case_count(), log.case_count());
  for (std::size_t i = 0; i < log.case_count(); ++i) {
    const auto& a = log.cases()[i];
    const auto& b = reloaded.cases()[i];
    ASSERT_EQ(a.id(), b.id());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.events()[j], b.events()[j]);
    }
  }
}

TEST_P(PipelineProperty, DfgFlowConservation) {
  Xoshiro256 rng(GetParam());
  const auto log = random_event_log(rng, 20);
  for (const auto& f : {model::Mapping::call_only(), model::Mapping::call_top_dirs(2),
                        model::Mapping::call_top_dirs(2).filtered_fp("/p")}) {
    const auto g = dfg::build_serial(log, f);
    EXPECT_TRUE(dfg::validate(g).empty())
        << "mapping " << f.name() << ": " << dfg::validate(g).front();
  }
}

TEST_P(PipelineProperty, MergedPartitionEqualsWhole) {
  // G[L(G)] merged with G[L(R)] == G[L(C)] for any case partition.
  Xoshiro256 rng(GetParam());
  const auto log = random_event_log(rng, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  const auto whole = dfg::build_serial(log, f);
  const auto [green, red] = log.partition(
      [&rng](const model::Case& c) { return c.id().rid % 2 == 0; });
  auto merged = dfg::build_serial(green, f);
  merged.merge(dfg::build_serial(red, f));
  EXPECT_EQ(merged, whole);
}

TEST_P(PipelineProperty, ParallelBuildEqualsSerial) {
  Xoshiro256 rng(GetParam());
  const auto log = random_event_log(rng, 24);
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(4);
  EXPECT_EQ(dfg::build_serial(log, f), dfg::build_parallel(log, f, pool));
}

TEST_P(PipelineProperty, ActivityLogMultiplicitiesSumToCaseCount) {
  Xoshiro256 rng(GetParam());
  const auto log = random_event_log(rng, 20);
  const auto al = model::ActivityLog::build(log, model::Mapping::call_only());
  std::size_t total = 0;
  for (const auto& [trace, mult] : al.variants()) total += mult;
  EXPECT_EQ(total, log.case_count());
}

TEST_P(PipelineProperty, InterleavedTextRoundTrip) {
  Xoshiro256 rng(GetParam());
  // Random multi-pid schedule; records of one pid are sequential.
  std::vector<strace::RawRecord> records;
  std::array<Micros, 3> clocks{};
  for (int i = 0; i < 60; ++i) {
    const std::uint64_t pid = 100 + rng.below(3);
    auto& clock = clocks[pid - 100];
    clock += static_cast<Micros>(rng.below(400));
    auto rec = random_record(rng, pid, clock);
    clock += *rec.duration;
    records.push_back(std::move(rec));
  }
  const std::string text = strace::format_trace_interleaved(records);
  const auto result = strace::read_trace_text(text);
  EXPECT_TRUE(result.warnings.empty()) << result.warnings.front();
  ASSERT_EQ(result.records.size(), records.size());
  // Every original record must be recovered intact.
  for (const auto& original : records) {
    bool found = false;
    for (const auto& parsed : result.records) {
      if (parsed.pid == original.pid && parsed.timestamp == original.timestamp &&
          parsed.call == original.call && parsed.duration == original.duration &&
          parsed.retval == original.retval && parsed.path == original.path) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << original.call << "@" << original.timestamp;
  }
}

TEST_P(PipelineProperty, QueryThenMapEqualsFilteredMapping) {
  // Restricting the event log and restricting the mapping are the two
  // equivalent query styles of Sec. IV — the DFGs must coincide.
  Xoshiro256 rng(GetParam());
  const auto log = random_event_log(rng, 16);
  const auto via_log = dfg::build_serial(log.filter_fp("/p/scratch"),
                                         model::Mapping::call_top_dirs(2));
  const auto via_mapping =
      dfg::build_serial(log, model::Mapping::call_top_dirs(2).filtered_fp("/p/scratch"));
  EXPECT_EQ(via_log, via_mapping);
}

}  // namespace
}  // namespace st
