#include "parallel/algorithms.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "parallel/thread_pool.hpp"

namespace st {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitWithArguments) {
  ThreadPool pool(2);
  auto f = pool.submit([](int a, int b) { return a * b; }, 6, 7);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, WaitIdleDrains) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    (void)pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeReflectsWorkers) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PendingTasksAreDiscardedAtDestruction) {
  // Shutdown-ordering regression (streaming pipeline): destroying the
  // pool must NOT run continuations that never started — they may
  // reference state (arenas, an unwinding caller's stack) that their
  // submitter already destroyed. The single worker is parked on a gate
  // while the destructor discards the whole queue, so none of the
  // pending tasks may ever run; their futures report broken_promise.
  std::promise<void> gate;
  auto gate_future = gate.get_future().share();
  std::promise<void> started;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> pending;
  {
    ThreadPool pool(1);
    (void)pool.submit([gate_future, &started] {
      started.set_value();
      gate_future.wait();
    });
    started.get_future().wait();  // the worker is now parked on the gate
    for (int i = 0; i < 64; ++i) {
      pending.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
    // Opens the gate well after ~ThreadPool has cleared the queue (the
    // destructor's first action, taken while the worker still blocks).
    std::thread release([&gate] {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      gate.set_value();
    });
    release.detach();
  }  // ~ThreadPool: discard 64 pending tasks, join the parked worker
  EXPECT_EQ(ran.load(), 0);
  for (auto& f : pending) EXPECT_THROW(f.get(), std::future_error);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw std::runtime_error("body failed");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ExceptionIsEarliestFailingIndexDeterministically) {
  // Many indices fail; the one that propagates must always be the
  // lowest, no matter how the pool schedules the chunks.
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::string what;
    try {
      parallel_for(pool, 0, 400, [](std::size_t i) {
        if (i % 7 == 3) throw std::runtime_error("failed at " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "failed at 3") << "round " << round;
  }
}

TEST(ParallelFor, AllTasksFinishBeforeThrow) {
  // An early failure must not leave tasks running against the caller's
  // (about to be destroyed) stack state: every index outside the
  // failing chunk is still visited exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  try {
    parallel_for(pool, 0, hits.size(), [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first chunk fails");
      hits[i].fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  for (std::size_t i = 1; i < hits.size(); ++i) {
    // Indices in the failing chunk after the throw are skipped; all
    // other chunks ran to completion.
    EXPECT_LE(hits[i].load(), 1);
  }
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_GE(total, static_cast<int>(hits.size()) - static_cast<int>(hits.size() / pool.size()));
}

TEST(ParallelMap, ExceptionIsFirstInputInOrder) {
  ThreadPool pool(3);
  std::vector<int> in(300);
  std::iota(in.begin(), in.end(), 0);
  for (int round = 0; round < 10; ++round) {
    std::string what;
    try {
      (void)parallel_map(pool, in, [](int v) -> int {
        if (v >= 100) throw std::runtime_error("bad input " + std::to_string(v));
        return v;
      });
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "bad input 100") << "round " << round;
  }
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> in(257);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(pool, in, [](int v) { return v * 2; });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i) * 2);
}

TEST(MapReduce, SumsChunks) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  const auto total = map_reduce(
      pool, n, std::int64_t{0},
      [](std::size_t lo, std::size_t hi) {
        std::int64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += static_cast<std::int64_t>(i);
        return s;
      },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(MapReduce, EmptyReturnsIdentity) {
  ThreadPool pool(2);
  const auto v = map_reduce(
      pool, 0, 123, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(v, 123);
}

TEST(MapReduce, NonCommutativeReduceIsOrdered) {
  // The fold must be left-to-right over chunks: string concatenation
  // of chunk ranges must reproduce the full sequence in order.
  ThreadPool pool(4);
  const auto s = map_reduce(
      pool, 26, std::string{},
      [](std::size_t lo, std::size_t hi) {
        std::string part;
        for (std::size_t i = lo; i < hi; ++i) part.push_back(static_cast<char>('a' + i));
        return part;
      },
      [](std::string a, const std::string& b) { return std::move(a) + b; });
  EXPECT_EQ(s, "abcdefghijklmnopqrstuvwxyz");
}

}  // namespace
}  // namespace st
