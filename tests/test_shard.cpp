// ISSUE 7 acceptance for pipeline::run_sharded: the sharded analytics
// — and the rendered report, byte for byte — are identical to the
// in-process streamed run at ANY shard count (1, 2, 3, 5, and more
// shards than files), doubles compared bit-exactly. The subprocess
// path (elog_tool fold-shard via posix_spawn) is exercised when
// ST_ELOG_TOOL points at the built binary (ctest sets it); without it
// those tests skip.
#include "pipeline/shard.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "dfg/stats.hpp"
#include "model/query.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/sink.hpp"
#include "report/report.hpp"
#include "support/errors.hpp"
#include "testing_corpus.hpp"

namespace st {
namespace {

using testing::expect_same_io_stats;
using testing::expect_same_log;

class Shard : public testing::CorpusTest {
 protected:
  Shard() : CorpusTest("st_shard") {}

  static pipeline::ShardOptions base_options(std::size_t shards) {
    pipeline::ShardOptions opts;
    opts.shards = shards;
    opts.mapping = "top2";
    opts.worker_threads = 2;
    return opts;
  }
};

TEST_F(Shard, AnyShardCountIsBitIdenticalToTheStreamedRun) {
  const auto paths = make_corpus();
  const auto f = model::mapping_by_name("top2");

  // In-process reference: one streamed pass, all sinks.
  ThreadPool pool(3);
  report::ReportOptions report_opts;
  const auto reference = report::streaming_report(paths, f, pool, report_opts);
  const auto ref_io = dfg::IoStatistics::compute(reference.log, f);
  const auto ref_edges = dfg::EdgeStatistics::compute(reference.log, f);
  ASSERT_FALSE(reference.log.warnings().empty());  // the corpus has noise

  // More shards than files (64) degenerates to one file per shard.
  for (const std::size_t shards : {1u, 2u, 3u, 5u, 64u}) {
    const auto analytics = pipeline::run_sharded(paths, base_options(shards));
    EXPECT_EQ(analytics.case_count, reference.log.case_count()) << shards;
    EXPECT_EQ(analytics.total_events, reference.log.total_events()) << shards;
    EXPECT_EQ(analytics.warnings, reference.log.warnings()) << shards;
    expect_same_io_stats(analytics.io_stats, ref_io);
    EXPECT_EQ(analytics.edge_stats.per_edge(), ref_edges.per_edge()) << shards;
    // The rendered report: BYTE-identical to the streamed one.
    EXPECT_EQ(report::render_sharded_report(analytics, f, report_opts), reference.html)
        << shards;
  }
}

TEST_F(Shard, TimelineSectionSurvivesTheShardBoundary) {
  const auto paths = make_corpus();
  const auto f = model::mapping_by_name("top2");

  ThreadPool pool(3);
  report::ReportOptions report_opts;
  {
    // Pick a real activity to embed as the timeline section.
    const auto probe = report::streaming_report(paths, f, pool);
    const auto stats = dfg::IoStatistics::compute(probe.log, f);
    ASSERT_FALSE(stats.per_activity().empty());
    report_opts.timeline_activity = stats.per_activity().begin()->first;
  }
  const auto reference = report::streaming_report(paths, f, pool, report_opts);
  const auto analytics = pipeline::run_sharded(paths, base_options(3));
  EXPECT_EQ(report::render_sharded_report(analytics, f, report_opts), reference.html);
}

TEST_F(Shard, QueryFilteredLogCrossesTheShardBoundaryIntact) {
  const auto paths = make_corpus();
  const auto f = model::mapping_by_name("top2");

  // Reference: the same query as a streamed QuerySink.
  ThreadPool pool(3);
  pipeline::QuerySink query_sink(
      model::Query().fp_contains("/p/").calls({"read", "write"}));
  (void)pipeline::run(paths, pool, {&query_sink});
  const model::EventLog ref_filtered = query_sink.take_log();
  ASSERT_GT(ref_filtered.total_events(), 0u);

  for (const std::size_t shards : {1u, 3u}) {
    auto opts = base_options(shards);
    opts.query_fp = "/p/";
    opts.query_calls = "read,write";
    const auto analytics = pipeline::run_sharded(paths, opts);
    ASSERT_TRUE(analytics.filtered.has_value()) << shards;
    expect_same_log(ref_filtered, *analytics.filtered);
  }
}

TEST_F(Shard, EmptyInputProducesEmptyAnalytics) {
  const auto analytics = pipeline::run_sharded({}, base_options(4));
  EXPECT_EQ(analytics.case_count, 0u);
  EXPECT_EQ(analytics.total_events, 0u);
  EXPECT_TRUE(analytics.warnings.empty());
  EXPECT_TRUE(analytics.graph.empty());
  EXPECT_TRUE(analytics.io_partial.empty());
  EXPECT_FALSE(analytics.filtered.has_value());
}

// ---- the subprocess path (gated on the built elog_tool) ----------------

TEST_F(Shard, SpawnedFoldShardMatchesInProcessByteForByte) {
  const char* exe = std::getenv("ST_ELOG_TOOL");
  if (exe == nullptr || *exe == '\0' || !std::filesystem::exists(exe)) {
    GTEST_SKIP() << "ST_ELOG_TOOL unset or not built (ctest exports the path)";
  }
  const auto paths = make_corpus();
  const auto f = model::mapping_by_name("top2");

  ThreadPool pool(3);
  report::ReportOptions report_opts;
  const auto reference = report::streaming_report(paths, f, pool, report_opts);

  for (const std::size_t shards : {2u, 3u}) {
    auto opts = base_options(shards);
    opts.fold_shard_exe = exe;
    const auto analytics = pipeline::run_sharded(paths, opts);
    EXPECT_EQ(analytics.warnings, reference.log.warnings()) << shards;
    EXPECT_EQ(report::render_sharded_report(analytics, f, report_opts), reference.html)
        << shards;
  }
}

TEST_F(Shard, SpawnedQueryCrossesTheProcessBoundary) {
  const char* exe = std::getenv("ST_ELOG_TOOL");
  if (exe == nullptr || *exe == '\0' || !std::filesystem::exists(exe)) {
    GTEST_SKIP() << "ST_ELOG_TOOL unset or not built (ctest exports the path)";
  }
  const auto paths = make_corpus();

  auto in_proc = base_options(2);
  in_proc.query_fp = "/p/";
  in_proc.query_calls = "read,write";
  auto spawned = in_proc;
  spawned.fold_shard_exe = exe;

  const auto a = pipeline::run_sharded(paths, in_proc);
  const auto b = pipeline::run_sharded(paths, spawned);
  ASSERT_TRUE(a.filtered.has_value());
  ASSERT_TRUE(b.filtered.has_value());
  expect_same_log(*a.filtered, *b.filtered);
}

// ---- error paths -------------------------------------------------------

TEST_F(Shard, ZeroShardsIsLogicError) {
  const auto paths = make_corpus();
  EXPECT_THROW((void)pipeline::run_sharded(paths, base_options(0)), LogicError);
}

TEST_F(Shard, BadTraceFilenameIsParseErrorBeforeAnyWork) {
  auto paths = make_corpus();
  paths.push_back(write_file("not-a-trace.txt", "x\n"));
  EXPECT_THROW((void)pipeline::run_sharded(paths, base_options(2)), ParseError);
}

TEST_F(Shard, MissingFoldShardExecutableRecoversViaInProcessFallback) {
  // The supervisor retries the spawn, exhausts max_attempts and folds
  // the shards in-process — same bytes as the clean run, with the whole
  // story in the shard report instead of the analytics.
  const auto paths = make_corpus();
  const auto f = model::mapping_by_name("top2");
  const auto reference = pipeline::run_sharded(paths, base_options(2));

  auto opts = base_options(2);
  opts.fold_shard_exe = "/nonexistent/st_fold_shard_binary";
  opts.max_attempts = 2;
  opts.retry_backoff_ms = 0;
  const auto analytics = pipeline::run_sharded(paths, opts);
  EXPECT_EQ(report::render_sharded_report(analytics, f),
            report::render_sharded_report(reference, f));
  ASSERT_EQ(analytics.shard_report.shards.size(), 2u);
  EXPECT_EQ(analytics.shard_report.total_fallbacks(), 2u);
  for (const auto& s : analytics.shard_report.shards) {
    EXPECT_EQ(s.attempts, 2u);
    EXPECT_TRUE(s.fell_back);
    ASSERT_EQ(s.failures.size(), 2u);
    EXPECT_NE(s.failures[0].find("cannot spawn"), std::string::npos);
  }
  EXPECT_FALSE(analytics.shard_report.to_lines().empty());
}

TEST_F(Shard, MissingFoldShardExecutableIsIoErrorWithoutTheFallback) {
  const auto paths = make_corpus();
  auto opts = base_options(2);
  opts.fold_shard_exe = "/nonexistent/st_fold_shard_binary";
  opts.max_attempts = 1;
  opts.fallback_in_process = false;
  EXPECT_THROW((void)pipeline::run_sharded(paths, opts), IoError);
}

}  // namespace
}  // namespace st
