#include "strace/scan.hpp"

#include <gtest/gtest.h>

namespace st::strace {
namespace {

TEST(SkipQuoted, SimpleString) {
  const std::string_view s = "\"abc\", rest";
  EXPECT_EQ(skip_quoted(s, 0), 5u);
}

TEST(SkipQuoted, EscapedQuoteInside) {
  const std::string_view s = R"("a\"b")";
  EXPECT_EQ(skip_quoted(s, 0), s.size());
}

TEST(SkipQuoted, EscapedBackslashBeforeClose) {
  const std::string_view s = R"("a\\")";
  EXPECT_EQ(skip_quoted(s, 0), s.size());
}

TEST(SkipQuoted, UnterminatedIsNull) { EXPECT_FALSE(skip_quoted("\"abc", 0)); }

TEST(SkipQuoted, NotAQuoteIsNull) { EXPECT_FALSE(skip_quoted("abc", 0)); }

TEST(SkipQuoted, TruncatedEscapeAtEndIsNull) {
  // A trailing backslash used to step the cursor past s.size(); it must
  // clamp and report the string as unterminated.
  EXPECT_FALSE(skip_quoted("\"abc\\", 0));
  EXPECT_FALSE(skip_quoted("\"\\", 0));
}

TEST(FindMatchingParen, Simple) {
  const std::string_view s = "read(3, buf, 10) = 10";
  EXPECT_EQ(find_matching_paren(s, 4), 15u);
}

TEST(FindMatchingParen, NestedStructures) {
  const std::string_view s = "call({a=[1,(2)], b=3}) = 0";
  EXPECT_EQ(find_matching_paren(s, 4), 21u);
}

TEST(FindMatchingParen, ParenInsideStringIgnored) {
  const std::string_view s = R"(open("a)b", 0) = 3)";
  EXPECT_EQ(find_matching_paren(s, 4), 13u);
}

TEST(FindMatchingParen, UnbalancedIsNull) {
  EXPECT_FALSE(find_matching_paren("call(abc", 4));
}

TEST(FindMatchingParen, WrongStartIsNull) {
  EXPECT_FALSE(find_matching_paren("call(abc)", 0));
}

TEST(FindMatchingParen, StrayBracketInsideArgsIgnored) {
  // A stray ']' used to decrement a depth counter shared across all
  // bracket classes, hitting zero early so the real ')' was never
  // found. Bracket classes now track independently.
  const std::string_view s = "call(a], b) = 0";
  EXPECT_EQ(find_matching_paren(s, 4), 10u);
}

TEST(FindMatchingParen, StrayBraceInsideArgsIgnored) {
  const std::string_view s = "call(a}b) = -1";
  EXPECT_EQ(find_matching_paren(s, 4), 8u);
}

TEST(FindMatchingParen, MismatchedPairInsideArgs) {
  // Truncated struct notation: "{...]" — neither closer terminates the
  // call's parentheses.
  const std::string_view s = "call({st_mode=S_IFREG], 3) = 0";
  EXPECT_EQ(find_matching_paren(s, 4), 25u);
}

TEST(SplitArgs, TopLevelCommasOnly) {
  const auto args = split_args("3</p>, \"a,b\", 832");
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0], "3</p>");
  EXPECT_EQ(args[1], "\"a,b\"");
  EXPECT_EQ(args[2], "832");
}

TEST(SplitArgs, NestedBracesDoNotSplit) {
  const auto args = split_args("{st_mode=S_IFREG|0644, st_size=100}, 42");
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[1], "42");
}

TEST(SplitArgs, EmptyGivesNothing) { EXPECT_TRUE(split_args("").empty()); }

TEST(SplitArgs, StrayCloserDoesNotSwallowLaterCommas) {
  // With a shared depth counter the stray ']' pushed the depth to -1
  // and the later top-level comma was never a split point.
  const auto args = split_args("a], b");
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0], "a]");
  EXPECT_EQ(args[1], "b");
}

TEST(SplitArgs, TruncatedEscapeTailKeptAsOneField) {
  const auto args = split_args("3</p>, \"x\\");
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[1], "\"x\\");
}

TEST(SplitArgs, SingleArg) {
  const auto args = split_args("AT_FDCWD");
  ASSERT_EQ(args.size(), 1u);
  EXPECT_EQ(args[0], "AT_FDCWD");
}

TEST(DecodeCString, CommonEscapes) {
  EXPECT_EQ(decode_c_string(R"(a\nb\t\")"), "a\nb\t\"");
}

TEST(DecodeCString, OctalEscapes) {
  EXPECT_EQ(decode_c_string(R"(\177ELF)"), "\177ELF");
  EXPECT_EQ(decode_c_string(R"(\0)"), std::string(1, '\0'));
}

TEST(DecodeCString, HexEscapes) { EXPECT_EQ(decode_c_string(R"(\x41B)"), "AB"); }

TEST(DecodeCString, UnknownEscapeKeptVerbatim) {
  EXPECT_EQ(decode_c_string(R"(\q)"), "\\q");
}

TEST(DecodeCString, PlainPassthrough) {
  EXPECT_EQ(decode_c_string("/etc/passwd"), "/etc/passwd");
}

TEST(FdAnnotation, PaperExample) {
  const auto fp = parse_fd_annotation("3</usr/lib/x86_64-linux-gnu/libselinux.so.1>");
  ASSERT_TRUE(fp);
  EXPECT_EQ(fp->fd, 3);
  EXPECT_EQ(fp->path, "/usr/lib/x86_64-linux-gnu/libselinux.so.1");
}

TEST(FdAnnotation, Socket) {
  const auto fp = parse_fd_annotation("4<socket:[12345]>");
  ASSERT_TRUE(fp);
  EXPECT_EQ(fp->fd, 4);
  EXPECT_EQ(fp->path, "socket:[12345]");
}

TEST(FdAnnotation, PlainNumberIsNull) { EXPECT_FALSE(parse_fd_annotation("832")); }

TEST(FdAnnotation, MissingCloseIsNull) { EXPECT_FALSE(parse_fd_annotation("3</p")); }

TEST(FdAnnotation, NoDigitsIsNull) { EXPECT_FALSE(parse_fd_annotation("</p>")); }

}  // namespace
}  // namespace st::strace
