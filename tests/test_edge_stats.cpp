#include "dfg/edge_stats.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace st::dfg {
namespace {

using testing::ev;
using testing::make_case;

TEST(EdgeStats, GapIsEndToStart) {
  model::EventLog log;
  // a: [0,100], b: [150,200] -> gap 50.
  log.add_case(make_case("c", 1, {ev("a", "", 0, 100), ev("b", "", 150, 50)}));
  const auto stats = EdgeStatistics::compute(log, model::Mapping::call_only());
  const auto* s = stats.find("a", "b");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
  EXPECT_EQ(s->total_gap, 50);
  EXPECT_EQ(s->max_gap, 50);
  EXPECT_DOUBLE_EQ(s->mean_gap(), 50.0);
}

TEST(EdgeStats, MeanOverMultipleObservations) {
  model::EventLog log;
  log.add_case(make_case("c", 1, {ev("a", "", 0, 10), ev("b", "", 20, 10),   // gap 10
                                  ev("a", "", 100, 10), ev("b", "", 140, 10)}));  // gap 30
  const auto stats = EdgeStatistics::compute(log, model::Mapping::call_only());
  const auto* ab = stats.find("a", "b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->count, 2u);
  EXPECT_DOUBLE_EQ(ab->mean_gap(), 20.0);
  EXPECT_EQ(ab->max_gap, 30);
  // The b->a back edge also exists with its own gap (110 - 30 = 70).
  const auto* ba = stats.find("b", "a");
  ASSERT_NE(ba, nullptr);
  EXPECT_EQ(ba->count, 1u);
  EXPECT_EQ(ba->total_gap, 70);
}

TEST(EdgeStats, NegativeGapCountsAsOverlapped) {
  model::EventLog log;
  // a: [0,100]; b starts at 50 (SMT interleaving).
  log.add_case(make_case("c", 1, {ev("a", "", 0, 100), ev("b", "", 50, 10)}));
  const auto stats = EdgeStatistics::compute(log, model::Mapping::call_only());
  const auto* s = stats.find("a", "b");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
  EXPECT_EQ(s->overlapped, 1u);
  EXPECT_EQ(s->total_gap, 0);
}

TEST(EdgeStats, GapsDoNotCrossCases) {
  model::EventLog log;
  log.add_case(make_case("c", 1, {ev("a", "", 0, 10)}));
  log.add_case(make_case("c", 2, {ev("b", "", 1000, 10)}));
  const auto stats = EdgeStatistics::compute(log, model::Mapping::call_only());
  EXPECT_EQ(stats.find("a", "b"), nullptr);
}

TEST(EdgeStats, UnmappedEventsDoNotBreakEdges) {
  model::EventLog log;
  log.add_case(make_case("c", 1, {ev("a", "/keep", 0, 10), ev("skip", "/drop", 20, 10),
                                  ev("b", "/keep", 40, 10)}));
  const auto f = model::Mapping::call_only().filtered("keep", [](const model::Event& e) {
    return e.fp == "/keep";
  });
  const auto stats = EdgeStatistics::compute(log, f);
  const auto* s = stats.find("a", "b");
  ASSERT_NE(s, nullptr);
  // Gap measured from a's end (10) to b's start (40).
  EXPECT_EQ(s->total_gap, 30);
}

TEST(EdgeStats, EdgeCountsMatchDfgCounts) {
  model::EventLog log;
  log.add_case(make_case("c", 1, {ev("x", "", 0, 1), ev("x", "", 10, 1), ev("y", "", 20, 1)}));
  log.add_case(make_case("c", 2, {ev("x", "", 0, 1), ev("y", "", 10, 1)}));
  const auto f = model::Mapping::call_only();
  const auto stats = EdgeStatistics::compute(log, f);
  EXPECT_EQ(stats.find("x", "x")->count, 1u);
  EXPECT_EQ(stats.find("x", "y")->count, 2u);
}

TEST(EdgeStats, SlowestEdge) {
  model::EventLog log;
  log.add_case(make_case("c", 1, {ev("a", "", 0, 10), ev("b", "", 20, 10),    // a->b gap 10
                                  ev("c", "", 1030, 10)}));                   // b->c gap 1000
  const auto stats = EdgeStatistics::compute(log, model::Mapping::call_only());
  const auto* slowest = stats.slowest_edge();
  ASSERT_NE(slowest, nullptr);
  EXPECT_EQ(slowest->first, "b");
  EXPECT_EQ(slowest->second, "c");
}

TEST(EdgeStats, EmptyLogHasNoEdgesAndNoSlowest) {
  const auto stats = EdgeStatistics::compute(model::EventLog{}, model::Mapping::call_only());
  EXPECT_TRUE(stats.per_edge().empty());
  EXPECT_EQ(stats.slowest_edge(), nullptr);
}

TEST(EdgeStats, BarrierStallVisibleInIorShape) {
  // Synthetic two-phase case: writes, long stall, then reads — the
  // stall shows up on the write->openat edge, not inside any node.
  model::EventLog log;
  log.add_case(make_case("ior", 1, {
                                       ev("openat", "/p/scratch/t", 0, 10),
                                       ev("write", "/p/scratch/t", 20, 100),
                                       ev("write", "/p/scratch/t", 130, 100),
                                       ev("openat", "/p/scratch/t", 50000, 10),  // post-barrier
                                       ev("read", "/p/scratch/t", 50020, 80),
                                   }));
  const auto f = model::Mapping::call_only();
  const auto stats = EdgeStatistics::compute(log, f);
  const auto* slowest = stats.slowest_edge();
  ASSERT_NE(slowest, nullptr);
  EXPECT_EQ(slowest->first, "write");
  EXPECT_EQ(slowest->second, "openat");
  EXPECT_GT(stats.find("write", "openat")->mean_gap(), 49000.0);
}

}  // namespace
}  // namespace st::dfg
