#include "dfg/builder.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "testing_util.hpp"

namespace st::dfg {
namespace {

/// Randomized event log: `cases` cases, each with up to `max_events`
/// events over a small alphabet of calls/paths.
model::EventLog random_log(std::uint64_t seed, std::size_t cases, std::size_t max_events) {
  Xoshiro256 rng(seed);
  const std::vector<std::string> calls = {"read", "write", "openat", "lseek"};
  const std::vector<std::string> paths = {"/usr/lib/a", "/etc/b", "/p/scratch/c", "/dev/pts/1"};
  model::EventLog log;
  for (std::size_t c = 0; c < cases; ++c) {
    std::vector<model::Event> events;
    const std::size_t n = rng.below(max_events + 1);
    for (std::size_t i = 0; i < n; ++i) {
      auto e = testing::ev(calls[rng.below(calls.size())], paths[rng.below(paths.size())],
                           static_cast<Micros>(rng.below(10000)),
                           static_cast<Micros>(1 + rng.below(100)),
                           static_cast<std::int64_t>(rng.below(4096)));
      events.push_back(std::move(e));
    }
    log.add_case(testing::make_case("r", c + 1, std::move(events)));
  }
  return log;
}

TEST(Builder, SerialMatchesActivityLogConstruction) {
  const auto log = random_log(1, 20, 30);
  const auto f = model::Mapping::call_top_dirs(2);
  const Dfg via_activity_log = Dfg::build(model::ActivityLog::build(log, f));
  const Dfg direct = build_serial(log, f);
  EXPECT_EQ(via_activity_log, direct);
}

TEST(Builder, EmptyLogGivesEmptyDfg) {
  ThreadPool pool(2);
  const auto f = model::Mapping::call_only();
  EXPECT_TRUE(build_serial(model::EventLog{}, f).empty());
  EXPECT_TRUE(build_parallel(model::EventLog{}, f, pool).empty());
}

// Property: the parallel map-reduce construction (refs [24][25]) gives
// exactly the serial graph, for many random logs and pool widths.
struct BuilderParam {
  std::uint64_t seed;
  std::size_t cases;
  std::size_t threads;
};

class BuilderEquivalence : public ::testing::TestWithParam<BuilderParam> {};

TEST_P(BuilderEquivalence, ParallelEqualsSerial) {
  const auto param = GetParam();
  const auto log = random_log(param.seed, param.cases, 40);
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(param.threads);
  EXPECT_EQ(build_serial(log, f), build_parallel(log, f, pool));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderEquivalence,
    ::testing::Values(BuilderParam{2, 1, 1}, BuilderParam{3, 1, 4}, BuilderParam{4, 7, 2},
                      BuilderParam{5, 16, 4}, BuilderParam{6, 33, 3}, BuilderParam{7, 64, 8},
                      BuilderParam{8, 100, 4}, BuilderParam{9, 128, 16},
                      BuilderParam{10, 255, 8}, BuilderParam{11, 256, 5}),
    [](const ::testing::TestParamInfo<BuilderParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_cases" +
             std::to_string(param_info.param.cases) + "_threads" + std::to_string(param_info.param.threads);
    });

TEST(Builder, PartialMappingDropsEventsInBothPaths) {
  const auto log = random_log(12, 25, 30);
  const auto f = model::Mapping::call_top_dirs(2).filtered_fp("/usr");
  ThreadPool pool(4);
  const Dfg serial = build_serial(log, f);
  EXPECT_EQ(serial, build_parallel(log, f, pool));
  for (const auto& a : serial.activities()) {
    EXPECT_NE(a.find("/usr"), std::string::npos);
  }
}

}  // namespace
}  // namespace st::dfg
