#include "model/variants.hpp"

#include <gtest/gtest.h>

#include "iosim/campaign.hpp"
#include "iosim/commands.hpp"
#include "testing_util.hpp"

namespace st::model {
namespace {

using testing::ev;
using testing::make_case;

ActivityLog make_log(const std::vector<std::vector<std::string>>& traces) {
  EventLog log;
  std::uint64_t rid = 1;
  for (const auto& trace : traces) {
    std::vector<Event> events;
    Micros t = 0;
    for (const auto& call : trace) {
      events.push_back(ev(call, "", t, 1));
      t += 10;
    }
    log.add_case(make_case("v", rid++, std::move(events)));
  }
  return ActivityLog::build(log, Mapping::call_only());
}

TEST(Variants, IdenticalLogsShareEverything) {
  const auto a = make_log({{"x", "y"}, {"x", "y"}});
  const auto diff = compare_variants(a, a);
  EXPECT_TRUE(diff.identical_behaviour());
  EXPECT_EQ(diff.common.size(), 1u);
  EXPECT_DOUBLE_EQ(diff.green_coverage(), 1.0);
  EXPECT_DOUBLE_EQ(diff.red_coverage(), 1.0);
}

TEST(Variants, ExclusiveVariantsDetected) {
  const auto green = make_log({{"x", "y"}, {"x", "z"}});
  const auto red = make_log({{"x", "y"}, {"q"}});
  const auto diff = compare_variants(green, red);
  EXPECT_FALSE(diff.identical_behaviour());
  ASSERT_EQ(diff.green_only.size(), 1u);
  EXPECT_EQ(diff.green_only.begin()->first, (ActivityTrace{"x", "z"}));
  ASSERT_EQ(diff.red_only.size(), 1u);
  EXPECT_EQ(diff.red_only.begin()->first, (ActivityTrace{"q"}));
  EXPECT_EQ(diff.common.size(), 1u);
}

TEST(Variants, MultiplicitiesTracked) {
  const auto green = make_log({{"a"}, {"a"}, {"a"}});
  const auto red = make_log({{"a"}});
  const auto diff = compare_variants(green, red);
  const auto& [g_count, r_count] = diff.common.at(ActivityTrace{"a"});
  EXPECT_EQ(g_count, 3u);
  EXPECT_EQ(r_count, 1u);
}

TEST(Variants, CoverageFractions) {
  // green: 2 covered cases of 4; red: 2 covered of 2.
  const auto green = make_log({{"a"}, {"a"}, {"b"}, {"c"}});
  const auto red = make_log({{"a"}, {"a"}});
  const auto diff = compare_variants(green, red);
  EXPECT_DOUBLE_EQ(diff.green_coverage(), 0.5);
  EXPECT_DOUBLE_EQ(diff.red_coverage(), 1.0);
}

TEST(Variants, EmptyLogsAreIdentical) {
  const auto diff = compare_variants(ActivityLog{}, ActivityLog{});
  EXPECT_TRUE(diff.identical_behaviour());
  EXPECT_DOUBLE_EQ(diff.green_coverage(), 1.0);
}

TEST(Variants, LsVersusLsLHaveDisjointVariants) {
  // The paper's Ca and Cb: each command has one variant, and they
  // differ (Fig. 3d's red nodes witness this at the trace level).
  const auto f = Mapping::call_top_dirs(2);
  const auto ca = ActivityLog::build(iosim::make_ls_traces().to_event_log(), f);
  const auto cb = ActivityLog::build(iosim::make_ls_l_traces().to_event_log(), f);
  const auto diff = compare_variants(ca, cb);
  EXPECT_EQ(diff.green_only.size(), 1u);
  EXPECT_EQ(diff.red_only.size(), 1u);
  EXPECT_TRUE(diff.common.empty());
  EXPECT_DOUBLE_EQ(diff.green_coverage(), 0.0);
}

TEST(Variants, HomogeneousSpmdRunHasOneVariantPerRun) {
  // All ranks of one IOR run behave identically up to activity level
  // — but rank-dependent file names (FPP) split the variants.
  iosim::CampaignScale scale = iosim::CampaignScale::small();
  auto options = iosim::make_ssf_options(scale);
  options.keep_files = true;  // -k: rank 0 would otherwise add unlinkat events
  const auto ssf = iosim::run_ior(options).to_event_log();
  const auto f = Mapping::call_site(SitePathMap::juwels_like(), 1);
  const auto al = ActivityLog::build(ssf, f);
  EXPECT_EQ(al.variants().size(), 1u);  // every rank: same activity trace
  EXPECT_EQ(al.variants().begin()->second, static_cast<std::size_t>(scale.num_ranks));
}

}  // namespace
}  // namespace st::model
