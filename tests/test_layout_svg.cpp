#include <gtest/gtest.h>

#include "dfg/builder.hpp"
#include "dfg/layout.hpp"
#include "dfg/render_svg.hpp"
#include "iosim/commands.hpp"
#include "testing_util.hpp"

namespace st::dfg {
namespace {

Dfg chain_graph() {
  Dfg g;
  g.add_trace({"a", "b", "c"}, 2);
  return g;
}

TEST(Layout, StartAtTopEndAtBottom) {
  const auto layout = layout_dfg(chain_graph(), nullptr);
  const auto* start = layout.find(Dfg::start_node());
  const auto* end = layout.find(Dfg::end_node());
  ASSERT_NE(start, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(start->layer, 0u);
  EXPECT_GT(end->layer, layout.find("c")->layer);
  EXPECT_LT(start->y, end->y);
}

TEST(Layout, ChainLayersAreSequential) {
  const auto layout = layout_dfg(chain_graph(), nullptr);
  EXPECT_EQ(layout.find("a")->layer, 1u);
  EXPECT_EQ(layout.find("b")->layer, 2u);
  EXPECT_EQ(layout.find("c")->layer, 3u);
}

TEST(Layout, EveryNodeInsideCanvas) {
  const auto log = model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                          iosim::make_ls_l_traces().to_event_log());
  const auto f = model::Mapping::call_top_dirs(2);
  const auto g = dfg::build_serial(log, f);
  const auto stats = IoStatistics::compute(log, f);
  const auto layout = layout_dfg(g, &stats);
  EXPECT_EQ(layout.nodes.size(), g.nodes().size());
  for (const auto& box : layout.nodes) {
    EXPECT_GE(box.x, 0.0) << box.activity;
    EXPECT_GE(box.y, 0.0) << box.activity;
    EXPECT_LE(box.x + box.width, layout.width + 1e-6) << box.activity;
    EXPECT_LE(box.y + box.height, layout.height + 1e-6) << box.activity;
    EXPECT_GT(box.width, 0.0);
    EXPECT_GT(box.height, 0.0);
  }
}

TEST(Layout, NoOverlapsWithinLayer) {
  const auto log = model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                          iosim::make_ls_l_traces().to_event_log());
  const auto f = model::Mapping::call_top_dirs(2);
  const auto layout = layout_dfg(dfg::build_serial(log, f), nullptr);
  for (const auto& a : layout.nodes) {
    for (const auto& b : layout.nodes) {
      if (a.activity == b.activity || a.layer != b.layer) continue;
      const bool overlap = a.x < b.x + b.width && b.x < a.x + a.width;
      EXPECT_FALSE(overlap) << a.activity << " overlaps " << b.activity;
    }
  }
}

TEST(Layout, SelfLoopsAndBackEdgesClassified) {
  Dfg g;
  g.add_trace({"a", "a", "b", "a"});  // self loop a->a, back edge b->a
  const auto layout = layout_dfg(g, nullptr);
  bool self_loop_seen = false;
  bool cycle_back_edge_seen = false;
  for (const auto& e : layout.edges) {
    if (e.from == "a" && e.to == "a") {
      EXPECT_TRUE(e.self_loop);
      self_loop_seen = true;
    }
    // The a<->b cycle must have exactly one of its edges drawn
    // backward; which one is an arbitrary (but deterministic) choice
    // of the bounded layering.
    if ((e.from == "b" && e.to == "a") || (e.from == "a" && e.to == "b")) {
      cycle_back_edge_seen |= e.back_edge;
    }
  }
  EXPECT_TRUE(self_loop_seen);
  EXPECT_TRUE(cycle_back_edge_seen);
}

TEST(Layout, LabelsIncludeStatsWhenProvided) {
  model::EventLog log;
  log.add_case(testing::make_case("a", 1, {testing::ev("read", "/usr/lib/x", 0, 10, 832)}));
  const auto f = model::Mapping::call_top_dirs(2);
  const auto stats = IoStatistics::compute(log, f);
  const auto layout = layout_dfg(dfg::build_serial(log, f), &stats);
  const auto* node = layout.find("read\n/usr/lib");
  ASSERT_NE(node, nullptr);
  ASSERT_GE(node->label_lines.size(), 3u);  // call, path, Load, (DR)
  EXPECT_EQ(node->label_lines[0], "read");
  EXPECT_EQ(node->label_lines[1], "/usr/lib");
  EXPECT_EQ(node->label_lines[2].substr(0, 5), "Load:");
}

TEST(Layout, EmptyGraph) {
  const auto layout = layout_dfg(Dfg{}, nullptr);
  EXPECT_TRUE(layout.nodes.empty());
  EXPECT_TRUE(layout.edges.empty());
}

TEST(Svg, WellFormedDocument) {
  const auto svg = render_svg(chain_graph(), nullptr, nullptr);
  EXPECT_EQ(svg.substr(0, 4), "<svg");
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("marker id=\"arrow\""), std::string::npos);
  // One rect per activity (a, b, c) plus background; circle + square markers.
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("width=\"16\" height=\"16\" fill=\"black\""), std::string::npos);
}

TEST(Svg, EdgeCountsAppearAsLabels) {
  const auto svg = render_svg(chain_graph(), nullptr, nullptr);
  EXPECT_NE(svg.find(">2</text>"), std::string::npos);  // multiplicity 2 edges
}

TEST(Svg, XmlEscapesLabels) {
  Dfg g;
  g.add_trace({"a<b>&c"});
  const auto svg = render_svg(g, nullptr, nullptr);
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
  EXPECT_EQ(svg.find("a<b>&c"), std::string::npos);
}

TEST(Svg, PartitionColorsApplied) {
  Dfg green;
  green.add_trace({"g"});
  Dfg red;
  red.add_trace({"r"});
  Dfg combined = green;
  combined.merge(red);
  const PartitionColoring styler(green, red);
  const auto svg = render_svg(combined, nullptr, &styler);
  EXPECT_NE(svg.find("#C8E6C9"), std::string::npos);
  EXPECT_NE(svg.find("#FFCDD2"), std::string::npos);
  EXPECT_NE(svg.find("stroke=\"green\""), std::string::npos);
  EXPECT_NE(svg.find("stroke=\"red\""), std::string::npos);
}

TEST(Svg, DeterministicOutput) {
  const auto log = iosim::make_ls_l_traces().to_event_log();
  const auto f = model::Mapping::call_top_dirs(2);
  const auto g = dfg::build_serial(log, f);
  const auto stats = IoStatistics::compute(log, f);
  const StatisticsColoring styler(stats);
  EXPECT_EQ(render_svg(g, &stats, &styler), render_svg(g, &stats, &styler));
}

}  // namespace
}  // namespace st::dfg
