// elog v2 (columnar, mmap-able, footer-indexed) — round trips, the
// staged/streamed byte-identity contract, and the integrity guarantee:
// a corrupted file surfaces as IoError, never as silently wrong
// analysis (including an exhaustive flip-one-bit-per-byte sweep, which
// the format's full-coverage design makes possible).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "elog/store.hpp"
#include "elog/v2_format.hpp"
#include "elog/v2_store.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/sink.hpp"
#include "pipeline/stream.hpp"
#include "strace/trace_buffer.hpp"
#include "support/crc32.hpp"
#include "support/errors.hpp"
#include "support/timeparse.hpp"
#include "testing_util.hpp"

namespace st::elog {
namespace {

namespace fs = std::filesystem;

using testing::ev;
using testing::make_case;

model::EventLog sample_log() {
  model::EventLog log;
  log.add_case(make_case("a", 9042,
                         {ev("read", "/usr/lib/x/libselinux.so.1", 100, 203, 832),
                          ev("read", "/usr/lib/x/libselinux.so.1", 400, 79, 832),
                          ev("write", "/dev/pts/7", 600, 111, 50)}));
  log.add_case(make_case("b", 9157, {ev("openat", "/p/scratch/ssf/test", 0, 25, -1)}, "node2"));
  return log;
}

bool logs_equal(const model::EventLog& a, const model::EventLog& b) {
  if (a.case_count() != b.case_count()) return false;
  for (std::size_t i = 0; i < a.case_count(); ++i) {
    const auto& ca = a.cases()[i];
    const auto& cb = b.cases()[i];
    if (ca.id() != cb.id() || ca.size() != cb.size()) return false;
    for (std::size_t j = 0; j < ca.size(); ++j) {
      if (!(ca.events()[j] == cb.events()[j])) return false;
    }
  }
  return true;
}

std::string v2_bytes(const model::EventLog& log) {
  std::ostringstream out(std::ios::binary);
  write_event_log_v2(out, log);
  return std::move(out).str();
}

std::shared_ptr<MappedElog> open_bytes(std::string bytes) {
  return MappedElog::from_buffer(std::make_shared<strace::TraceBuffer>(std::move(bytes)));
}

/// Opens + fully checks `bytes`; any corruption must throw IoError.
void open_and_verify(std::string bytes) {
  const auto mapped = open_bytes(std::move(bytes));
  mapped->verify();
  for (std::size_t i = 0; i < mapped->case_count(); ++i) (void)mapped->case_at(i);
}

// ---- round trips -------------------------------------------------------

TEST(ElogV2, RoundTripInMemory) {
  const auto log = sample_log();
  const auto reloaded = read_event_log_v2(open_bytes(v2_bytes(log)));
  EXPECT_TRUE(logs_equal(log, reloaded));
}

TEST(ElogV2, RoundTripThroughFileUsesMmap) {
  const std::string path = ::testing::TempDir() + "/v2_roundtrip.elog";
  write_event_log_v2_file(path, sample_log());
  const auto mapped = open_v2(path);
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_EQ(mapped->case_count(), 2u);
  EXPECT_EQ(mapped->total_events(), 4u);
  EXPECT_EQ(mapped->case_id(1), (model::CaseId{"b", "node2", 9157}));
  EXPECT_EQ(mapped->case_rows(0), 3u);
  EXPECT_TRUE(logs_equal(sample_log(), read_event_log_v2(mapped)));
  fs::remove(path);
}

TEST(ElogV2, StoreDispatchReadsV2Stream) {
  // read_event_log sniffs the magic: v2 bytes through the generic
  // istream entry point.
  std::stringstream buf(v2_bytes(sample_log()));
  EXPECT_TRUE(logs_equal(sample_log(), read_event_log(buf)));
}

TEST(ElogV2, StoreDispatchReadsV2File) {
  const std::string path = ::testing::TempDir() + "/v2_dispatch.elog";
  write_event_log_v2_file(path, sample_log());
  EXPECT_TRUE(logs_equal(sample_log(), read_event_log_file(path)));
  fs::remove(path);
}

TEST(ElogV2, RoundTripEmptyLog) {
  const auto reloaded = read_event_log_v2(open_bytes(v2_bytes(model::EventLog{})));
  EXPECT_EQ(reloaded.case_count(), 0u);
}

TEST(ElogV2, RoundTripEmptyCase) {
  model::EventLog log;
  log.add_case(make_case("a", 1, {}));
  const auto mapped = open_bytes(v2_bytes(log));
  mapped->verify();
  EXPECT_EQ(mapped->case_rows(0), 0u);
  const auto reloaded = read_event_log_v2(mapped);
  ASSERT_EQ(reloaded.case_count(), 1u);
  EXPECT_EQ(reloaded.cases()[0].size(), 0u);
  EXPECT_EQ(reloaded.cases()[0].id(), (model::CaseId{"a", "host1", 1}));
}

TEST(ElogV2, AdoptionKeepsViewsAliveAfterMappingHandleIsDropped) {
  const std::string path = ::testing::TempDir() + "/v2_adopt.elog";
  write_event_log_v2_file(path, sample_log());
  model::EventLog log;
  {
    auto mapped = open_v2(path);
    log = read_event_log_v2(std::move(mapped));
  }  // the only named handle to the mapping is gone; the log adopted it
  EXPECT_EQ(log.cases()[0].events()[0].call, "read");
  EXPECT_EQ(log.cases()[0].events()[0].fp, "/usr/lib/x/libselinux.so.1");
  EXPECT_TRUE(logs_equal(sample_log(), log));
  fs::remove(path);
}

TEST(ElogV2, ConvertV1ToV2ToV1IsLossless) {
  const auto log = sample_log();
  std::stringstream v1a;
  write_event_log(v1a, log);
  const auto from_v1 = read_event_log(v1a);
  const auto from_v2 = read_event_log_v2(open_bytes(v2_bytes(from_v1)));
  std::stringstream v1b;
  write_event_log(v1b, from_v2);
  EXPECT_TRUE(logs_equal(log, read_event_log(v1b)));
  // And the v2 -> v1 -> v2 re-encode is byte-identical.
  EXPECT_EQ(v2_bytes(from_v1), v2_bytes(from_v2));
}

// ---- layout properties -------------------------------------------------

TEST(ElogV2, SectionsAreEightByteAligned) {
  const auto mapped = open_bytes(v2_bytes(sample_log()));
  for (const SectionEntry& e : mapped->sections()) {
    EXPECT_EQ(e.offset % kSectionAlign, 0u) << section_kind_name(e.kind);
  }
}

TEST(ElogV2, StringPoolIsSharedAcrossCases) {
  // The same path used from several cases must land in the file once —
  // v1's per-case pools store it once per case.
  model::EventLog log;
  const std::string path = "/p/scratch/ssf/a-rather-long-shared-file-path";
  for (std::uint64_t c = 1; c <= 4; ++c) {
    log.add_case(make_case("w" + std::to_string(c), c, {ev("write", path, 10, 5, 100)}));
  }
  const std::string data = v2_bytes(log);
  std::size_t occurrences = 0;
  for (std::size_t pos = data.find(path); pos != std::string::npos;
       pos = data.find(path, pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u);
  EXPECT_TRUE(logs_equal(log, read_event_log_v2(open_bytes(data))));
}

TEST(ElogV2, StartEncodingPicksVarintForSmallDeltas) {
  const auto mapped = open_bytes(v2_bytes(sample_log()));
  for (const SectionEntry& e : mapped->sections()) {
    if (e.kind == SectionKind::kColStart && mapped->case_rows(e.case_index) > 0) {
      EXPECT_EQ(e.aux, kStartEncodingVarint);
    }
  }
}

TEST(ElogV2, StartEncodingFallsBackToFixedForHugeDeltas) {
  // Deltas near 2^60 need 9+ varint bytes — fixed i64 is smaller and
  // must be chosen; the round trip must hold either way.
  model::EventLog log;
  log.add_case(make_case("big", 1,
                         {ev("read", "/p/a", 1LL << 60, 1, 8),
                          ev("read", "/p/a", 2LL << 60, 1, 8),
                          ev("read", "/p/a", 3LL << 60, 1, 8)}));
  const std::string data = v2_bytes(log);
  const auto mapped = open_bytes(data);
  bool saw_start = false;
  for (const SectionEntry& e : mapped->sections()) {
    if (e.kind == SectionKind::kColStart) {
      EXPECT_EQ(e.aux, kStartEncodingFixed);
      EXPECT_EQ(e.length, 3u * 8u);
      saw_start = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(logs_equal(log, read_event_log_v2(mapped)));
}

// ---- varint primitives -------------------------------------------------

TEST(ElogV2Varint, ZigzagRoundTripsExtremes) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63}, std::int64_t{-64},
        std::numeric_limits<std::int64_t>::max(), std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(ElogV2Varint, UvarintRoundTrips) {
  std::string buf;
  std::vector<std::uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  for (const std::uint64_t v : values) put_uvarint(buf, v);
  const char* p = buf.data();
  const char* end = p + buf.size();
  for (const std::uint64_t v : values) EXPECT_EQ(read_uvarint(&p, end), v);
  EXPECT_EQ(p, end);
}

TEST(ElogV2Varint, TruncatedAndOverlongThrow) {
  std::string buf;
  put_uvarint(buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const char* p = buf.data();
    EXPECT_THROW((void)read_uvarint(&p, p + cut), IoError) << "cut " << cut;
  }
  const std::string overlong(11, '\x80');
  const char* p = overlong.data();
  EXPECT_THROW((void)read_uvarint(&p, p + overlong.size()), IoError);
}

// ---- writer contract ---------------------------------------------------

TEST(ElogV2Writer, UnfinalizedFileIsUnreadable) {
  const std::string path = ::testing::TempDir() + "/v2_unfinalized.elog";
  {
    ElogV2Writer writer(path);
    writer.append(sample_log().cases()[0]);
    // no finalize(): the file has no footer and must not read as a log
  }
  EXPECT_THROW((void)open_v2(path), IoError);
  EXPECT_THROW((void)read_event_log_file(path), IoError);
  fs::remove(path);
}

TEST(ElogV2Writer, AppendAfterFinalizeThrows) {
  std::ostringstream out(std::ios::binary);
  ElogV2Writer writer(out);
  writer.finalize();
  EXPECT_THROW(writer.append(sample_log().cases()[0]), LogicError);
}

TEST(ElogV2Writer, FinalizeIsIdempotent) {
  std::ostringstream out(std::ios::binary);
  ElogV2Writer writer(out);
  writer.append(sample_log().cases()[0]);
  writer.finalize();
  writer.finalize();
  EXPECT_EQ(writer.cases_written(), 1u);
  const auto reloaded = read_event_log_v2(open_bytes(std::move(out).str()));
  EXPECT_EQ(reloaded.case_count(), 1u);
}

TEST(ElogV2Writer, IncrementalWriteMatchesBulkWrite) {
  const auto log = sample_log();
  std::ostringstream out(std::ios::binary);
  ElogV2Writer writer(out);
  for (const auto& c : log.cases()) writer.append(c);
  writer.finalize();
  EXPECT_EQ(std::move(out).str(), v2_bytes(log));
}

// ---- streamed sink: byte identity at any worker count ------------------

std::string ts(Micros t) { return format_time_of_day(t); }

std::string make_clean_trace(std::size_t lines, std::uint64_t pid) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  const std::string p = std::to_string(pid);
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    switch (i % 5) {
      case 0:
        text += p + "  " + ts(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += p + "  " + ts(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += p + "  " + ts(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        text += p + "  " + ts(t) + " read(3</p/data/f>, <unfinished ...>\n";
        break;
      default:
        text += p + "  " + ts(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

class ElogV2Import : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("st_elog_v2_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    paths_.push_back(write_file("a_nodeA_1.st", make_clean_trace(400, 40)));
    paths_.push_back(write_file("b_nodeB_2.st", make_clean_trace(250, 50)));
    paths_.push_back(write_file("empty_nodeA_3.st", ""));
    paths_.push_back(write_file("c_nodeC_4.st", make_clean_trace(330, 60)));
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  fs::path dir_;
  std::vector<std::string> paths_;
};

TEST_F(ElogV2Import, SinkWriteIsByteIdenticalToStagedWriteAtAnyWorkerCount) {
  // The reference: a staged write of the (deterministic) streamed log.
  ThreadPool ref_pool(1);
  const auto ref_log = pipeline::event_log_streamed(paths_, ref_pool);
  const std::string staged = v2_bytes(ref_log);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    std::ostringstream out(std::ios::binary);
    ElogV2Writer writer(out);
    ElogV2WriterSink sink(writer);
    const auto log = pipeline::run(paths_, pool, {&sink});
    writer.finalize();
    EXPECT_EQ(std::move(out).str(), staged) << "workers " << workers;
    EXPECT_TRUE(logs_equal(ref_log, log));
  }
  // Maximal backpressure (queue capacity 1) must not change a byte.
  ThreadPool pool(4);
  pipeline::StreamOptions opts;
  opts.queue_capacity = 1;
  std::ostringstream out(std::ios::binary);
  ElogV2Writer writer(out);
  ElogV2WriterSink sink(writer);
  (void)pipeline::run(paths_, pool, {&sink}, opts);
  writer.finalize();
  EXPECT_EQ(std::move(out).str(), staged);
}

TEST_F(ElogV2Import, ImportedV1AndV2AgreeWithEachOtherAndTheTraces) {
  ThreadPool pool(3);
  const auto from_traces = pipeline::event_log_streamed(paths_, pool);
  // v1 route
  std::stringstream v1;
  write_event_log(v1, from_traces);
  const auto from_v1 = read_event_log(v1);
  // v2 route, via the streamed sink
  std::ostringstream v2(std::ios::binary);
  ElogV2Writer writer(v2);
  ElogV2WriterSink sink(writer);
  (void)pipeline::run(paths_, pool, {&sink});
  writer.finalize();
  const auto from_v2 = read_event_log_v2(open_bytes(std::move(v2).str()));
  EXPECT_TRUE(logs_equal(from_traces, from_v1));
  EXPECT_TRUE(logs_equal(from_traces, from_v2));
}

// ---- corruption: IoError, never wrong analysis -------------------------

TEST(ElogV2Corruption, TruncationThrows) {
  const std::string data = v2_bytes(sample_log());
  for (const std::size_t cut : {std::size_t{0}, std::size_t{7}, data.size() / 4,
                                data.size() / 2, data.size() - 1}) {
    EXPECT_THROW(open_and_verify(data.substr(0, cut)), IoError) << "cut " << cut;
  }
}

TEST(ElogV2Corruption, BadMagicThrows) {
  std::string data = v2_bytes(sample_log());
  data[0] = 'X';
  EXPECT_THROW(open_and_verify(std::move(data)), IoError);
}

TEST(ElogV2Corruption, FlippedBitInEverySectionThrows) {
  const std::string data = v2_bytes(sample_log());
  const auto clean = open_bytes(data);
  for (const SectionEntry& e : clean->sections()) {
    if (e.length == 0) continue;
    std::string corrupt = data;
    corrupt[e.offset + e.length / 2] ^= 0x10;
    EXPECT_THROW(open_and_verify(std::move(corrupt)), IoError)
        << "section " << section_kind_name(e.kind) << " case " << e.case_index;
  }
}

TEST(ElogV2Corruption, ExhaustiveSingleBitFlipSweepIsAlwaysDetected) {
  // The full-coverage property: EVERY byte of the file is under some
  // check (magic, section crc, table crc, footer structure, or the
  // zero-padding rule), so one flipped bit anywhere must throw.
  const std::string data = v2_bytes(sample_log());
  for (std::size_t pos = 0; pos < data.size(); ++pos) {
    std::string corrupt = data;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << (pos % 8)));
    EXPECT_THROW(open_and_verify(std::move(corrupt)), IoError) << "byte " << pos;
  }
}

TEST(ElogV2Corruption, CrcValidationIsLazyAndPerSection) {
  // A flipped byte in case 1's dur column: open stays cheap and
  // succeeds, case 0 still reads, touching case 1 throws.
  const std::string data = v2_bytes(sample_log());
  const auto clean = open_bytes(data);
  std::string corrupt = data;
  bool patched = false;
  for (const SectionEntry& e : clean->sections()) {
    if (e.kind == SectionKind::kColDur && e.case_index == 1 && e.length > 0) {
      corrupt[e.offset] ^= 0x01;
      patched = true;
    }
  }
  ASSERT_TRUE(patched);
  const auto mapped = open_bytes(std::move(corrupt));
  EXPECT_NO_THROW((void)mapped->case_at(0));
  EXPECT_THROW((void)mapped->case_at(1), IoError);
  EXPECT_THROW(mapped->verify(), IoError);
}

// ---- index sections (zone maps, id sets, posting list) -----------------

TEST(ElogV2Index, IndexSectionsPresentAndDiscoverable) {
  const auto mapped = open_bytes(v2_bytes(sample_log()));
  EXPECT_TRUE(mapped->has_index());
  std::size_t zones = 0;
  std::size_t callsets = 0;
  std::size_t fpsets = 0;
  std::size_t postings = 0;
  for (const SectionEntry& e : mapped->sections()) {
    if (e.kind == SectionKind::kZoneMap) ++zones;
    if (e.kind == SectionKind::kCallSet) ++callsets;
    if (e.kind == SectionKind::kFpSet) ++fpsets;
    if (e.kind == SectionKind::kPosting) ++postings;
  }
  EXPECT_EQ(zones, 1u);
  EXPECT_EQ(callsets, 1u);
  EXPECT_EQ(fpsets, 1u);
  EXPECT_EQ(postings, 1u);

  const auto iv = mapped->index_view();
  ASSERT_NE(iv.zones, nullptr);
  ASSERT_NE(iv.call_ends, nullptr);
  ASSERT_NE(iv.fp_ends, nullptr);
  ASSERT_NE(iv.posting_table, nullptr);
  // Case 0 of sample_log: starts 100/400/600, pid = rid + 12 = 9054.
  const auto z0 = iv.zone(0);
  EXPECT_EQ(z0.min_start, 100);
  EXPECT_EQ(z0.max_start, 600);
  EXPECT_EQ(z0.min_pid, 9054u);
  EXPECT_EQ(z0.max_pid, 9054u);
}

TEST(ElogV2Index, PostingListMapsEveryCallToItsCases) {
  const auto mapped = open_bytes(v2_bytes(sample_log()));
  const auto iv = mapped->index_view();
  std::map<std::string, std::vector<std::uint32_t>> by_call;
  std::uint32_t begin = 0;
  for (std::uint32_t k = 0; k < iv.posting_keys; ++k) {
    const std::uint32_t id = load_u32(iv.posting_table + k * 8);
    const std::uint32_t end = load_u32(iv.posting_table + k * 8 + 4);
    auto& cases = by_call[std::string(mapped->pool_string(id))];
    for (std::uint32_t i = begin; i < end; ++i) {
      cases.push_back(load_u32(iv.posting_cases + i * 4));
    }
    begin = end;
  }
  const std::map<std::string, std::vector<std::uint32_t>> expected = {
      {"read", {0}}, {"write", {0}}, {"openat", {1}}};
  EXPECT_EQ(by_call, expected);
}

TEST(ElogV2Index, EmptyCaseWritesEmptyRangeSentinels) {
  model::EventLog log;
  log.add_case(make_case("a", 1, {}));
  log.add_case(make_case("b", 2, {ev("read", "/p/x", 50, 1, 8)}));
  const auto mapped = open_bytes(v2_bytes(log));
  const auto iv = mapped->index_view();
  const auto z = iv.zone(0);
  EXPECT_EQ(z.min_start, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(z.max_start, std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(z.min_pid, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(z.max_pid, 0u);
  // Its distinct-call set is empty: ends[0] == 0.
  EXPECT_EQ(load_u32(iv.call_ends), 0u);
  mapped->verify();
}

TEST(ElogV2Index, NoIndexFileIsReadableAndReportsNoIndex) {
  std::ostringstream out(std::ios::binary);
  write_event_log_v2(out, sample_log(), ElogV2WriterOptions{false});
  const auto mapped = open_bytes(std::move(out).str());
  EXPECT_FALSE(mapped->has_index());
  for (const SectionEntry& e : mapped->sections()) {
    EXPECT_FALSE(section_kind_is_index(e.kind)) << section_kind_name(e.kind);
  }
  mapped->verify();
  EXPECT_TRUE(logs_equal(sample_log(), read_event_log_v2(mapped)));
}

TEST(ElogV2Index, ReencodeIsByteStableAndReindexesBareFiles) {
  const auto log = sample_log();
  const std::string indexed = v2_bytes(log);
  std::ostringstream bare_out(std::ios::binary);
  write_event_log_v2(bare_out, log, ElogV2WriterOptions{false});
  const std::string bare = std::move(bare_out).str();
  ASSERT_NE(indexed, bare);
  // convert --reindex's core contract: re-encoding a log read from an
  // index-free file produces exactly the indexed bytes, and re-encoding
  // an already-indexed file is byte-stable.
  EXPECT_EQ(v2_bytes(read_event_log_v2(open_bytes(bare))), indexed);
  EXPECT_EQ(v2_bytes(read_event_log_v2(open_bytes(indexed))), indexed);
}

TEST(ElogV2IndexCorruption, FlippedBitInEachIndexSectionThrowsOnVerifyAndUse) {
  const std::string data = v2_bytes(sample_log());
  const auto clean = open_bytes(data);
  std::size_t tested = 0;
  for (const SectionEntry& e : clean->sections()) {
    if (!section_kind_is_index(e.kind) || e.length == 0) continue;
    std::string corrupt = data;
    corrupt[e.offset + e.length / 2] ^= 0x04;
    const auto mapped = open_bytes(std::move(corrupt));
    // The index is advisory by ABSENCE only: present + corrupt is an
    // IoError on every path that would consult it...
    EXPECT_THROW((void)mapped->index_view(), IoError) << section_kind_name(e.kind);
    EXPECT_THROW(mapped->verify(), IoError) << section_kind_name(e.kind);
    // ...while the plain materializing read stays untouched.
    EXPECT_TRUE(logs_equal(sample_log(), read_event_log_v2(mapped)));
    ++tested;
  }
  EXPECT_EQ(tested, 4u);
}

TEST(ElogV2IndexCorruption, HostileButChecksummedIndexStillThrows) {
  // Beyond bit rot: a callset whose cumulative ends overrun the id
  // array, with all CRCs recomputed, must still be IoError on use.
  std::string data = v2_bytes(sample_log());
  const FooterV2 f = load_footer(data);
  const char* table = data.data() + f.table_offset;
  bool patched = false;
  for (std::uint32_t i = 0; i < f.section_count; ++i) {
    char* entry_bytes = data.data() + f.table_offset + i * kSectionEntryBytes;
    const SectionEntry e = load_section_entry(entry_bytes);
    if (e.kind != SectionKind::kCallSet) continue;
    store_u32(data.data() + e.offset, 0xFFFFu);  // ends[0] far past the ids
    store_u32(entry_bytes + 24, Crc32::of(data.data() + e.offset, e.length));
    patched = true;
  }
  ASSERT_TRUE(patched);
  std::string footer_patch;
  put_u32(footer_patch,
          Crc32::of(table, static_cast<std::size_t>(f.section_count) * kSectionEntryBytes));
  data.replace(data.size() - kFooterBytes + 16, 4, footer_patch);
  const auto mapped = open_bytes(std::move(data));
  EXPECT_THROW((void)mapped->index_view(), IoError);
  EXPECT_THROW(mapped->verify(), IoError);
  EXPECT_NO_THROW((void)mapped->case_at(0));  // columns are untouched
}

TEST(ElogV2Corruption, OutOfRangePoolIdThrowsEvenWithValidCrcs) {
  // Beyond bit rot: a structurally "consistent" file whose call column
  // points past the pool (all crcs recomputed) must still be IoError.
  std::string data = v2_bytes(sample_log());
  const FooterV2 f = load_footer(data);
  const char* table = data.data() + f.table_offset;
  for (std::uint32_t i = 0; i < f.section_count; ++i) {
    char* entry_bytes = data.data() + f.table_offset + i * kSectionEntryBytes;
    const SectionEntry e = load_section_entry(entry_bytes);
    if (e.kind != SectionKind::kColCall || e.case_index != 0) continue;
    store_u32(data.data() + e.offset, 1000);  // far past the pool
    store_u32(entry_bytes + 24, Crc32::of(data.data() + e.offset, e.length));
  }
  std::string footer_patch;
  put_u32(footer_patch,
          Crc32::of(table, static_cast<std::size_t>(f.section_count) * kSectionEntryBytes));
  data.replace(data.size() - kFooterBytes + 16, 4, footer_patch);
  const auto mapped = open_bytes(std::move(data));
  mapped->verify();  // all crcs check out...
  EXPECT_THROW((void)mapped->case_at(0), IoError);  // ...the id still cannot escape
}

}  // namespace
}  // namespace st::elog
