#include "dfg/dfg.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace st::dfg {
namespace {

using model::ActivityTrace;

TEST(Dfg, SingleTraceEdges) {
  Dfg g;
  g.add_trace({"a", "b", "c"});
  EXPECT_EQ(g.edge_count(Dfg::start_node(), "a"), 1u);
  EXPECT_EQ(g.edge_count("a", "b"), 1u);
  EXPECT_EQ(g.edge_count("b", "c"), 1u);
  EXPECT_EQ(g.edge_count("c", Dfg::end_node()), 1u);
  EXPECT_EQ(g.trace_count(), 1u);
}

TEST(Dfg, SelfLoopFromRepeatedActivity) {
  Dfg g;
  g.add_trace({"a", "a", "a"});
  EXPECT_EQ(g.edge_count("a", "a"), 2u);
  EXPECT_EQ(g.node_count("a"), 3u);
}

TEST(Dfg, MultiplicityScalesCounts) {
  Dfg g;
  g.add_trace({"a", "b"}, 3);
  EXPECT_EQ(g.edge_count("a", "b"), 3u);
  EXPECT_EQ(g.node_count("a"), 3u);
  EXPECT_EQ(g.trace_count(), 3u);
}

TEST(Dfg, EmptyTraceConnectsStartToEnd) {
  Dfg g;
  g.add_trace({}, 2);
  EXPECT_EQ(g.edge_count(Dfg::start_node(), Dfg::end_node()), 2u);
}

TEST(Dfg, ZeroMultiplicityIsNoop) {
  Dfg g;
  g.add_trace({"a"}, 0);
  EXPECT_TRUE(g.empty());
}

TEST(Dfg, EdgeExistenceIffDirectlyFollows) {
  // a1 -> a2 exists iff a1 immediately precedes a2 in some trace.
  Dfg g;
  g.add_trace({"a", "b", "c"});
  EXPECT_TRUE(g.has_edge("a", "b"));
  EXPECT_FALSE(g.has_edge("a", "c"));  // transitive, not direct
  EXPECT_FALSE(g.has_edge("b", "a"));  // direction matters
}

TEST(Dfg, ActivitiesExcludeMarkers) {
  Dfg g;
  g.add_trace({"x", "y"});
  EXPECT_EQ(g.activities(), (std::set<model::Activity>{"x", "y"}));
  EXPECT_TRUE(g.has_node(Dfg::start_node()));
  EXPECT_TRUE(g.has_node(Dfg::end_node()));
}

// The paper's worked example: L(Ca) = {<read:/usr/lib x3,
// read:/proc/filesystems x2, read:/etc/locale.alias x2,
// write:/dev/pts>^3} produces the Fig. 3b edge numbers.
TEST(Dfg, PaperFig3bEdgeFrequencies) {
  const ActivityTrace ls_trace{
      "read:/usr/lib",          "read:/usr/lib",          "read:/usr/lib",
      "read:/proc/filesystems", "read:/proc/filesystems", "read:/etc/locale.alias",
      "read:/etc/locale.alias", "write:/dev/pts",
  };
  Dfg g;
  g.add_trace(ls_trace, 3);

  EXPECT_EQ(g.edge_count(Dfg::start_node(), "read:/usr/lib"), 3u);
  EXPECT_EQ(g.edge_count("read:/usr/lib", "read:/usr/lib"), 6u);  // the "6" in Fig. 3b
  EXPECT_EQ(g.edge_count("read:/usr/lib", "read:/proc/filesystems"), 3u);
  EXPECT_EQ(g.edge_count("read:/proc/filesystems", "read:/proc/filesystems"), 3u);
  EXPECT_EQ(g.edge_count("read:/proc/filesystems", "read:/etc/locale.alias"), 3u);
  EXPECT_EQ(g.edge_count("read:/etc/locale.alias", "read:/etc/locale.alias"), 3u);
  EXPECT_EQ(g.edge_count("read:/etc/locale.alias", "write:/dev/pts"), 3u);
  EXPECT_EQ(g.edge_count("write:/dev/pts", Dfg::end_node()), 3u);
}

TEST(Dfg, BuildFromActivityLogMatchesManualConstruction) {
  model::EventLog log;
  log.add_case(testing::make_case("a", 1, {testing::ev("x", "", 0, 1), testing::ev("y", "", 1, 1)}));
  log.add_case(testing::make_case("a", 2, {testing::ev("x", "", 0, 1), testing::ev("y", "", 1, 1)}));
  const auto al = model::ActivityLog::build(log, model::Mapping::call_only());
  const Dfg from_log = Dfg::build(al);

  Dfg manual;
  manual.add_trace({"x", "y"}, 2);
  EXPECT_EQ(from_log, manual);
}

// ---- merge: abelian monoid ------------------------------------------------

TEST(DfgMerge, IdentityElement) {
  Dfg g;
  g.add_trace({"a", "b"});
  Dfg copy = g;
  copy.merge(Dfg{});
  EXPECT_EQ(copy, g);

  Dfg empty;
  empty.merge(g);
  EXPECT_EQ(empty, g);
}

TEST(DfgMerge, AddsCounts) {
  Dfg g1;
  g1.add_trace({"a", "b"});
  Dfg g2;
  g2.add_trace({"a", "b"});
  g2.add_trace({"b", "c"});
  g1.merge(g2);
  EXPECT_EQ(g1.edge_count("a", "b"), 2u);
  EXPECT_EQ(g1.edge_count("b", "c"), 1u);
  EXPECT_EQ(g1.trace_count(), 3u);
}

TEST(DfgMerge, Commutative) {
  Dfg g1;
  g1.add_trace({"a", "b"}, 2);
  Dfg g2;
  g2.add_trace({"c"}, 5);

  Dfg left = g1;
  left.merge(g2);
  Dfg right = g2;
  right.merge(g1);
  EXPECT_EQ(left, right);
}

TEST(DfgMerge, Associative) {
  Dfg a;
  a.add_trace({"x"});
  Dfg b;
  b.add_trace({"x", "y"});
  Dfg c;
  c.add_trace({"y", "x"});

  Dfg ab = a;
  ab.merge(b);
  Dfg ab_c = ab;
  ab_c.merge(c);

  Dfg bc = b;
  bc.merge(c);
  Dfg a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
}

TEST(DfgMerge, MergeOfSplitLogEqualsWholeLog) {
  // G[L(Ca)] + G[L(Cb)] == G[L(Ca ∪ Cb)] — the Fig. 3d observation
  // that the union DFG's counts are the sums.
  const ActivityTrace t1{"p", "q"};
  const ActivityTrace t2{"p", "q", "r"};
  Dfg whole;
  whole.add_trace(t1, 3);
  whole.add_trace(t2, 3);

  Dfg part_a;
  part_a.add_trace(t1, 3);
  Dfg part_b;
  part_b.add_trace(t2, 3);
  part_a.merge(part_b);
  EXPECT_EQ(part_a, whole);
}

TEST(Dfg, StartEndMarkersAreStableConstants) {
  EXPECT_EQ(Dfg::start_node(), "●");
  EXPECT_EQ(Dfg::end_node(), "■");
  EXPECT_NE(Dfg::start_node(), Dfg::end_node());
}

}  // namespace
}  // namespace st::dfg
