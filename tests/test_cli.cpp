#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/errors.hpp"

namespace st {
namespace {

CliParser make_parser() {
  CliParser p;
  p.add_flag("ranks", "number of ranks", "96");
  p.add_flag("out", "output path", std::nullopt);
  p.add_flag("verbose", "chatty output", std::nullopt, /*boolean=*/true);
  p.add_flag("alpha", "contention factor", "1.0");
  return p;
}

TEST(Cli, DefaultsApply) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_EQ(p.get_int("ranks"), 96);
  EXPECT_FALSE(p.has("ranks"));
}

TEST(Cli, SpaceSeparatedValue) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--ranks", "8"};
  p.parse(3, argv);
  EXPECT_EQ(p.get_int("ranks"), 8);
  EXPECT_TRUE(p.has("ranks"));
}

TEST(Cli, EqualsValue) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--ranks=16"};
  p.parse(2, argv);
  EXPECT_EQ(p.get_int("ranks"), 16);
}

TEST(Cli, BooleanFlag) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  p.parse(2, argv);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Cli, BooleanDefaultFalse) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(Cli, DoubleValue) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--alpha", "0.25"};
  p.parse(3, argv);
  EXPECT_DOUBLE_EQ(p.get_double("alpha"), 0.25);
}

TEST(Cli, Positional) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "file1.st", "--ranks", "4", "file2.st"};
  p.parse(5, argv);
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "file1.st");
  EXPECT_EQ(p.positional()[1], "file2.st");
}

TEST(Cli, UnknownFlagThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(p.parse(3, argv), ParseError);
}

TEST(Cli, MissingValueThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--ranks"};
  EXPECT_THROW(p.parse(2, argv), ParseError);
}

TEST(Cli, BooleanWithValueThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--verbose=yes"};
  EXPECT_THROW(p.parse(2, argv), ParseError);
}

TEST(Cli, GetWithoutValueThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_THROW((void)p.get("out"), ParseError);
}

TEST(Cli, UndeclaredGetThrowsLogicError) {
  CliParser p = make_parser();
  const char* argv[] = {"prog"};
  p.parse(1, argv);
  EXPECT_THROW((void)p.get("nope"), LogicError);
}

TEST(Cli, NonIntegerThrows) {
  CliParser p = make_parser();
  const char* argv[] = {"prog", "--ranks", "abc"};
  p.parse(3, argv);
  EXPECT_THROW((void)p.get_int("ranks"), ParseError);
}

TEST(Cli, UsageListsFlags) {
  CliParser p = make_parser();
  const std::string usage = p.usage("prog");
  EXPECT_NE(usage.find("--ranks"), std::string::npos);
  EXPECT_NE(usage.find("default: 96"), std::string::npos);
}

}  // namespace
}  // namespace st
