// Shared synthetic strace corpus for pipeline-level tests
// (test_stats_sinks, test_shard): the same trace shape
// test_pipeline_sinks pioneered — reads with sizes and durations (the
// FP-sensitive rate samples), opens, writes, cross-line resume pairs,
// optional warning noise — plus a gtest fixture that writes it into a
// per-test temp directory as a small multi-host corpus.
//
// Also the exact-equality helpers of ISSUE 7: doubles are compared by
// BIT PATTERN (std::bit_cast), because the determinism contract is
// bit-identity, not approximate equality.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dfg/stats.hpp"
#include "model/event_log.hpp"
#include "support/timeparse.hpp"

namespace st::testing {

/// A trace body with reads, opens, cross-line resume pairs and — when
/// `with_noise` — lines that provoke reader warnings.
inline std::string make_trace(std::size_t lines, bool with_noise, std::uint64_t pid_base = 7) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    const std::string pid = std::to_string(pid_base + i % 2);
    const std::string ts = format_time_of_day(t);
    switch (i % 5) {
      case 0:
        text += pid + "  " + ts + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += pid + "  " + ts +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += pid + "  " + ts +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      case 3:
        if (with_noise && i % 15 == 3) {
          text += pid + "  " + ts + " not_a_call_line\n";
        } else {
          text += pid + "  " + ts + " read(3</p/data/f>, <unfinished ...>\n";
        }
        break;
      default:
        text += pid + "  " + ts + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

/// Per-test temp directory + the standard corpus: one big noisy file,
/// several small ones across two more hosts, plus an empty file (empty
/// case, empty variant). Derive and pass a unique `prefix`.
class CorpusTest : public ::testing::Test {
 protected:
  explicit CorpusTest(std::string prefix) : prefix_(std::move(prefix)) {}

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (prefix_ + "_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const std::filesystem::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  std::vector<std::string> make_corpus() {
    std::vector<std::string> paths;
    paths.push_back(write_file("big_nodeA_9001.st", make_trace(900, true)));
    for (int i = 0; i < 4; ++i) {
      paths.push_back(write_file(
          "s" + std::to_string(i) + "_node" + (i % 2 ? "B" : "C") + "_" +
              std::to_string(9100 + i) + ".st",
          make_trace(30 + static_cast<std::size_t>(i) * 7, i % 2 == 0,
                     static_cast<std::uint64_t>(100 + i))));
    }
    paths.push_back(write_file("empty_nodeA_9200.st", ""));
    return paths;
  }

  std::filesystem::path dir_;
  std::string prefix_;
};

/// Bitwise double equality — the ISSUE 7 acceptance criterion.
/// EXPECT_EQ on doubles would pass for -0.0 vs +0.0; the bit pattern
/// may not.
inline void expect_same_bits(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

/// Field-by-field IoStatistics equality with bit-exact doubles,
/// including the rendered labels the reports embed.
inline void expect_same_io_stats(const dfg::IoStatistics& a, const dfg::IoStatistics& b) {
  EXPECT_EQ(a.total_duration(), b.total_duration());
  ASSERT_EQ(a.per_activity().size(), b.per_activity().size());
  auto ita = a.per_activity().begin();
  auto itb = b.per_activity().begin();
  for (; ita != a.per_activity().end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    const dfg::ActivityStat& sa = ita->second;
    const dfg::ActivityStat& sb = itb->second;
    EXPECT_EQ(sa.total_dur, sb.total_dur) << ita->first;
    expect_same_bits(sa.rel_dur, sb.rel_dur, "rel_dur of " + ita->first);
    EXPECT_EQ(sa.bytes, sb.bytes) << ita->first;
    EXPECT_EQ(sa.has_bytes, sb.has_bytes) << ita->first;
    expect_same_bits(sa.mean_rate, sb.mean_rate, "mean_rate of " + ita->first);
    EXPECT_EQ(sa.rate_samples, sb.rate_samples) << ita->first;
    EXPECT_EQ(sa.max_concurrency, sb.max_concurrency) << ita->first;
    EXPECT_EQ(sa.rank_count, sb.rank_count) << ita->first;
    EXPECT_EQ(sa.event_count, sb.event_count) << ita->first;
    EXPECT_EQ(sa.load_label(), sb.load_label()) << ita->first;
    EXPECT_EQ(sa.dr_label(), sb.dr_label()) << ita->first;
  }
}

/// Case-by-case, event-by-event EventLog equality (EventLog itself has
/// no operator== — views make that a trap).
inline void expect_same_log(const model::EventLog& a, const model::EventLog& b) {
  ASSERT_EQ(a.case_count(), b.case_count());
  for (std::size_t c = 0; c < a.case_count(); ++c) {
    const auto& ca = a.cases()[c];
    const auto& cb = b.cases()[c];
    ASSERT_EQ(ca.id(), cb.id()) << "case " << c;
    ASSERT_EQ(ca.size(), cb.size()) << "case " << c;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(ca.events()[i], cb.events()[i]) << "case " << c << " event " << i;
    }
  }
  EXPECT_EQ(a.warnings(), b.warnings());
}

}  // namespace st::testing
