// Parallel-vs-sequential ingestion equivalence and the TraceBuffer
// lifetime contract.
//
// read_trace_parallel promises byte-identical output to the sequential
// reader: same records in the same order, same warning strings, same
// strict-mode exception. The corpus generator below is adversarial on
// purpose — multi-PID interleaved unfinished/resumed pairs (often
// spanning chunk boundaries), overwritten unfinished records, resumed
// records with no match, call-name mismatches, signals, exits,
// ERESTARTSYS, malformed and blank lines — and the parallel reader is
// forced into many small chunks so every fold path is exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "strace/reader.hpp"
#include "strace/writer.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "support/timeparse.hpp"

namespace st::strace {
namespace {

std::string ts(Micros t) { return format_time_of_day(t); }

/// Deterministic adversarial trace: six pids, every merger code path.
std::string make_corpus(std::uint64_t seed, std::size_t lines) {
  Xoshiro256 rng(seed);
  std::string text;
  text.reserve(lines * 90);
  // Per-pid pending call name ("" = nothing pending).
  std::vector<std::string> pending(6);
  Micros t = 36000000000;  // 10:00:00
  for (std::size_t i = 0; i < lines; ++i) {
    t += static_cast<Micros>(1 + rng.below(300));
    const std::uint64_t pid = 1 + rng.below(6);
    auto& open_call = pending[pid - 1];
    const std::string pid_ts = std::to_string(pid) + "  " + ts(t) + " ";
    switch (rng.below(12)) {
      case 0:  // complete read with fd annotation
        text += pid_ts + "read(3</p/data/file" + std::to_string(rng.below(4)) +
                ">, \"\"..., 4096) = " + std::to_string(rng.below(4097)) + " <0.000040>\n";
        break;
      case 1:  // openat with quoted path + annotated return
        text += pid_ts + "openat(AT_FDCWD, \"rel/file\", O_RDONLY) = 5</p/abs/file> <0.000150>\n";
        break;
      case 2:  // ERESTARTSYS (dropped by default options)
        text += pid_ts + "read(3</p/f>, \"\"..., 100) = -1 ERESTARTSYS (To be restarted) <0.000005>\n";
        break;
      case 3:  // signal
        text += pid_ts + "--- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED} ---\n";
        break;
      case 4:  // exit
        text += pid_ts + "+++ exited with 0 +++\n";
        break;
      case 5:  // malformed: no parenthesis
        text += pid_ts + "not_a_call_line\n";
        break;
      case 6:  // malformed: unbalanced parens
        text += pid_ts + "read(3</p/f>, \"\"..., 100 = 100\n";
        break;
      case 7:  // blank line
        text += "\n";
        break;
      case 8:  // resumed — matches pending, mismatches its name, or dangles
        if (!open_call.empty() && rng.below(4) == 0) {
          text += pid_ts + "<... mismatched_call resumed> \"\"..., 512) = 512 <0.000080>\n";
          open_call.clear();
        } else {
          text += pid_ts + "<... " + (open_call.empty() ? std::string("read") : open_call) +
                  " resumed> \"\"..., 512) = 499 <0.000080>\n";
          open_call.clear();
        }
        break;
      case 9:   // unfinished (may silently overwrite an earlier one)
      case 10: {
        const bool write = rng.below(2) == 0;
        open_call = write ? "write" : "read";
        text += pid_ts + open_call + "(4</p/shared/out" + std::to_string(pid) +
                ">, \"\"..., " + (write ? "8192, " : "") + "<unfinished ...>\n";
        break;
      }
      default:  // pwrite64 with offset (third-argument size rule)
        text += pid_ts + "pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = "
                "1048576 <0.000294>\n";
        break;
    }
  }
  return text;
}

void expect_same_records(const ReadResult& seq, const ReadResult& par) {
  ASSERT_EQ(seq.records.size(), par.records.size());
  for (std::size_t i = 0; i < seq.records.size(); ++i) {
    const RawRecord& a = seq.records[i];
    const RawRecord& b = par.records[i];
    ASSERT_EQ(a.pid, b.pid) << "record " << i;
    ASSERT_EQ(a.timestamp, b.timestamp) << "record " << i;
    ASSERT_EQ(a.kind, b.kind) << "record " << i;
    ASSERT_EQ(a.call, b.call) << "record " << i;
    ASSERT_EQ(a.args, b.args) << "record " << i;
    ASSERT_EQ(a.fd, b.fd) << "record " << i;
    ASSERT_EQ(a.path, b.path) << "record " << i;
    ASSERT_EQ(a.retval, b.retval) << "record " << i;
    ASSERT_EQ(a.errno_name, b.errno_name) << "record " << i;
    ASSERT_EQ(a.duration, b.duration) << "record " << i;
    ASSERT_EQ(a.requested, b.requested) << "record " << i;
    // Full line formatting must also agree byte for byte.
    ASSERT_EQ(format_record(a), format_record(b)) << "record " << i;
  }
}

ParallelReadOptions tiny_chunks(const ReadOptions& base) {
  ParallelReadOptions opts;
  static_cast<ReadOptions&>(opts) = base;
  opts.threads = 3;
  opts.min_chunk_bytes = 256;  // force many chunks and many folds
  return opts;
}

TEST(ParallelReader, EquivalentOnAdversarialCorpus) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    const std::string text = make_corpus(seed, 600);
    const ReadOptions opts;  // defaults: drop signals/exits/restarts, strict=false
    const auto seq = read_trace_text(text, opts);
    const auto par = read_trace_text_parallel(text, tiny_chunks(opts));
    expect_same_records(seq, par);
    EXPECT_EQ(seq.warnings, par.warnings) << "seed " << seed;
  }
}

TEST(ParallelReader, EquivalentWithFiltersDisabled) {
  ReadOptions opts;
  opts.drop_restarts = false;
  opts.drop_signals = false;
  opts.drop_exits = false;
  const std::string text = make_corpus(99, 600);
  const auto seq = read_trace_text(text, opts);
  const auto par = read_trace_text_parallel(text, tiny_chunks(opts));
  expect_same_records(seq, par);
  EXPECT_EQ(seq.warnings, par.warnings);
}

TEST(ParallelReader, EquivalentOnCleanSingleChunkAndManyChunks) {
  // A clean trace (no warnings) across chunk-count extremes.
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "7  " + ts(36000000000 + i * 100) + " read(3</p/f>, \"\"..., 512) = 512 <0.000040>\n";
  }
  const auto seq = read_trace_text(text);
  for (const std::size_t chunk_bytes : {std::size_t{1} << 20, std::size_t{128}}) {
    ParallelReadOptions opts;
    opts.threads = 2;
    opts.min_chunk_bytes = chunk_bytes;
    const auto par = read_trace_text_parallel(text, opts);
    expect_same_records(seq, par);
    EXPECT_TRUE(par.warnings.empty());
  }
}

TEST(ParallelReader, CrossChunkResumePairsMerge) {
  // One unfinished/resumed pair per pid, separated by enough filler
  // that a 256-byte chunking always splits the pair across chunks.
  std::string text;
  Micros t = 36000000000;
  text += "1  " + ts(t += 10) + " read(3</p/a>, <unfinished ...>\n";
  text += "2  " + ts(t += 10) + " write(4</p/b>, \"\"..., 8192, <unfinished ...>\n";
  for (int i = 0; i < 40; ++i) {
    text += "9  " + ts(t += 10) + " read(3</p/f>, \"\"..., 512) = 512 <0.000040>\n";
  }
  text += "1  " + ts(t += 10) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
  text += "2  " + ts(t += 10) + " <... write resumed> ) = 8192 <0.000100>\n";
  const auto seq = read_trace_text(text);
  const auto par = read_trace_text_parallel(text, tiny_chunks({}));
  EXPECT_TRUE(seq.warnings.empty());
  expect_same_records(seq, par);
  EXPECT_EQ(seq.warnings, par.warnings);
  // The merged pairs really did merge (with the unfinished timestamps).
  const auto merged_read = std::find_if(par.records.begin(), par.records.end(),
                                        [](const RawRecord& r) { return r.pid == 1; });
  ASSERT_NE(merged_read, par.records.end());
  EXPECT_EQ(merged_read->kind, RecordKind::Complete);
  EXPECT_EQ(merged_read->retval, 404);
  EXPECT_EQ(merged_read->path, "/p/a");
}

TEST(ParallelReader, StrictModeThrowsSameErrorAsSequential) {
  std::string text;
  Micros t = 36000000000;
  for (int i = 0; i < 30; ++i) {
    text += "7  " + ts(t += 10) + " read(3</p/f>, \"\"..., 512) = 512 <0.000040>\n";
  }
  text += "garbage line\n";  // first error, mid-corpus
  for (int i = 0; i < 30; ++i) {
    text += "8  " + ts(t += 10) + " <... read resumed> ) = 1 <0.000001>\n";  // later errors
  }
  ReadOptions opts;
  opts.strict = true;
  std::string seq_what;
  std::string par_what;
  try {
    (void)read_trace_text(text, opts);
  } catch (const ParseError& e) {
    seq_what = e.what();
  }
  try {
    (void)read_trace_text_parallel(text, tiny_chunks(opts));
  } catch (const ParseError& e) {
    par_what = e.what();
  }
  ASSERT_FALSE(seq_what.empty());
  EXPECT_EQ(seq_what, par_what);
}

TEST(TraceBufferLifetime, RecordsOutliveTheSourceString) {
  ReadResult result;
  {
    // Includes an escaped path, so both the text-view and the
    // arena-decoded cases are covered.
    std::string text =
        "1  10:00:00.000001 openat(AT_FDCWD, \"/p/a\\nb\", O_RDONLY) = 3 <0.000010>\n"
        "1  10:00:00.000002 read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
    result = read_trace_text(text);
    // Scribble over and destroy the source: records must not notice,
    // because read_trace_text copied the bytes into result.buffer.
    std::fill(text.begin(), text.end(), 'X');
  }
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].call, "openat");
  EXPECT_EQ(result.records[0].path, "/p/a\nb");  // decoded into the buffer's arena
  EXPECT_EQ(result.records[1].call, "read");
  EXPECT_EQ(result.records[1].path, "/p/data/f");
}

TEST(TraceBufferLifetime, RecordsFollowAMovedResult) {
  std::vector<ReadResult> results;
  {
    const std::string text =
        "1  10:00:00.000001 read(3</p/a>, <unfinished ...>\n"
        "1  10:00:00.000002 <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
    results.push_back(read_trace_text(text));
  }
  for (int i = 0; i < 8; ++i) {  // force reallocations of the holder
    results.push_back(ReadResult{});
  }
  const ReadResult& moved = results.front();
  ASSERT_EQ(moved.records.size(), 1u);
  // The merged args are arena-backed; the buffer travelled with the
  // result, so the view is still alive.
  EXPECT_EQ(moved.records[0].args, "3</p/a>, \"\"..., 405");
  EXPECT_EQ(moved.records[0].path, "/p/a");
  EXPECT_EQ(moved.records[0].retval, 404);
}

TEST(TraceBufferLifetime, SharedBufferServesManyReads) {
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "7  " + ts(36000000000 + i * 100) + " read(3</p/f>, \"\"..., 512) = 512 <0.000040>\n";
  }
  auto buffer = std::make_shared<TraceBuffer>(text);
  const auto a = read_trace_buffer(buffer);
  const auto b = read_trace_parallel(buffer, tiny_chunks({}));
  expect_same_records(a, b);
  // Both results share the same byte storage: zero-copy means the
  // sequential records literally point into the buffer's text.
  const char* base = buffer->text().data();
  const char* end = base + buffer->text().size();
  EXPECT_TRUE(a.records[0].call.data() >= base && a.records[0].call.data() < end);
}

}  // namespace
}  // namespace st::strace
