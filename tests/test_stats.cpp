#include "dfg/stats.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace st::dfg {
namespace {

using testing::ev;
using testing::make_case;

model::EventLog small_log() {
  model::EventLog log;
  // Case 1: two reads of /usr/lib (832 B each), one write to /dev/pts.
  log.add_case(make_case("a", 1, {
                                     ev("read", "/usr/lib/a/x.so", 0, 100, 832),
                                     ev("read", "/usr/lib/a/y.so", 150, 100, 832),
                                     ev("write", "/dev/pts/7", 300, 50, 50),
                                 }));
  // Case 2: one read of /usr/lib overlapping case 1's second read.
  log.add_case(make_case("a", 2, {ev("read", "/usr/lib/a/x.so", 200, 100, 832)}));
  return log;
}

TEST(Stats, RelativeDurationsSumToOne) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  double sum = 0;
  for (const auto& [a, s] : stats.per_activity()) sum += s.rel_dur;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Stats, RelativeDurationValues) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  // read:/usr/lib total dur = 300, write:/dev/pts = 50, total = 350.
  const auto* read = stats.find("read\n/usr/lib");
  const auto* write = stats.find("write\n/dev/pts");
  ASSERT_NE(read, nullptr);
  ASSERT_NE(write, nullptr);
  EXPECT_EQ(read->total_dur, 300);
  EXPECT_NEAR(read->rel_dur, 300.0 / 350.0, 1e-12);
  EXPECT_NEAR(write->rel_dur, 50.0 / 350.0, 1e-12);
  EXPECT_EQ(stats.total_duration(), 350);
}

TEST(Stats, BytesSummedPerActivity) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  EXPECT_EQ(stats.find("read\n/usr/lib")->bytes, 3 * 832);
  EXPECT_EQ(stats.find("write\n/dev/pts")->bytes, 50);
}

TEST(Stats, EventsWithoutSizeDoNotContributeBytes) {
  model::EventLog log;
  log.add_case(make_case("a", 1, {ev("openat", "/p/f", 0, 100, -1)}));
  const auto stats = IoStatistics::compute(log, model::Mapping::call_only());
  const auto* s = stats.find("openat");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->bytes, 0);
  EXPECT_FALSE(s->has_bytes);
  EXPECT_EQ(s->rate_samples, 0u);
}

TEST(Stats, ProcessDataRateIsMeanOfEventRates) {
  model::EventLog log;
  // Rates: 1000 B / 100 us = 10 MB/s; 3000 B / 100 us = 30 MB/s.
  log.add_case(make_case("a", 1, {ev("read", "/f", 0, 100, 1000), ev("read", "/f", 200, 100, 3000)}));
  const auto stats = IoStatistics::compute(log, model::Mapping::call_only());
  EXPECT_NEAR(stats.find("read")->mean_rate, 20e6, 1e-6);
  EXPECT_EQ(stats.find("read")->rate_samples, 2u);
}

TEST(Stats, ZeroDurationEventSkippedInRate) {
  model::EventLog log;
  log.add_case(make_case("a", 1, {ev("read", "/f", 0, 0, 1000), ev("read", "/f", 10, 100, 1000)}));
  const auto stats = IoStatistics::compute(log, model::Mapping::call_only());
  EXPECT_EQ(stats.find("read")->rate_samples, 1u);
  EXPECT_NEAR(stats.find("read")->mean_rate, 10e6, 1e-6);
}

TEST(Stats, MaxConcurrencyAcrossCases) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  // Case1 read [150,250] overlaps case2 read [200,300]: mc = 2.
  EXPECT_EQ(stats.find("read\n/usr/lib")->max_concurrency, 2u);
  EXPECT_EQ(stats.find("write\n/dev/pts")->max_concurrency, 1u);
}

TEST(Stats, RankCountIsDistinctCases) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  EXPECT_EQ(stats.find("read\n/usr/lib")->rank_count, 2u);
  EXPECT_EQ(stats.find("write\n/dev/pts")->rank_count, 1u);
}

TEST(Stats, EventCount) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  EXPECT_EQ(stats.find("read\n/usr/lib")->event_count, 3u);
}

TEST(Stats, PartialMappingExcludesFromTotals) {
  const auto f = model::Mapping::call_top_dirs(2).filtered_fp("/usr/lib");
  const auto stats = IoStatistics::compute(small_log(), f);
  // The write is unmapped: total duration excludes it -> rel_dur = 1.
  EXPECT_EQ(stats.per_activity().size(), 1u);
  EXPECT_NEAR(stats.find("read\n/usr/lib")->rel_dur, 1.0, 1e-12);
  EXPECT_EQ(stats.total_duration(), 300);
}

TEST(Stats, LoadLabelFormat) {
  ActivityStat s;
  s.rel_dur = 0.21843;
  s.bytes = 14976;
  s.has_bytes = true;
  EXPECT_EQ(s.load_label(), "Load:0.22 (14.98 KB)");
}

TEST(Stats, LoadLabelWithoutBytes) {
  ActivityStat s;
  s.rel_dur = 0.55;
  EXPECT_EQ(s.load_label(), "Load:0.55");
}

TEST(Stats, DrLabelFormat) {
  ActivityStat s;
  s.max_concurrency = 2;
  s.mean_rate = 10.15e6;
  s.rate_samples = 6;
  EXPECT_EQ(s.dr_label(), "DR: 2x10.15 MB/s");
}

TEST(Stats, DrLabelEmptyWithoutSamples) {
  ActivityStat s;
  EXPECT_EQ(s.dr_label(), "");
}

TEST(Stats, FindMissingActivityIsNull) {
  const auto stats = IoStatistics::compute(small_log(), model::Mapping::call_top_dirs(2));
  EXPECT_EQ(stats.find("nope"), nullptr);
}

TEST(Stats, EmptyLog) {
  const auto stats = IoStatistics::compute(model::EventLog{}, model::Mapping::call_only());
  EXPECT_TRUE(stats.per_activity().empty());
  EXPECT_EQ(stats.total_duration(), 0);
}

TEST(Timeline, CollectsIntervalsOfOneActivity) {
  const auto entries =
      IoStatistics::timeline(small_log(), model::Mapping::call_top_dirs(2), "read\n/usr/lib");
  ASSERT_EQ(entries.size(), 3u);
  // Sorted by start.
  EXPECT_EQ(entries[0].interval.start, 0);
  EXPECT_EQ(entries[1].interval.start, 150);
  EXPECT_EQ(entries[2].interval.start, 200);
  EXPECT_EQ(entries[2].case_id.rid, 2u);
}

TEST(Timeline, UnknownActivityIsEmpty) {
  EXPECT_TRUE(
      IoStatistics::timeline(small_log(), model::Mapping::call_top_dirs(2), "zzz").empty());
}

}  // namespace
}  // namespace st::dfg
