// FIG3 — the DFG synthesis of the ls / ls -l event logs.
//
// Regenerates G[L(Ca)] (Fig. 3b), G[L(Cb)] (Fig. 3c) and G[L(Cx)]
// (Fig. 3d). As in the paper, the activity statistics displayed in all
// three graphs are computed over the combined log Cx. Fig. 3d applies
// partition coloring: GREEN elements occur only in `ls`, RED only in
// `ls -l`.
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/commands.hpp"

int main() {
  using namespace st;
  const auto ca = iosim::make_ls_traces().to_event_log();
  const auto cb = iosim::make_ls_l_traces().to_event_log();
  const auto cx = model::EventLog::merge(ca, cb);

  const auto f = model::Mapping::call_top_dirs(2);  // f-hat, Eq. 4
  const auto g_ca = dfg::build_serial(ca, f);
  const auto g_cb = dfg::build_serial(cb, f);
  const auto g_cx = dfg::build_serial(cx, f);
  // The paper annotates every variant of the figure with statistics
  // computed over the union Cx (the Load/DR values repeat in 3b-3d).
  const auto stats = dfg::IoStatistics::compute(cx, f);
  const dfg::StatisticsColoring blue(stats);

  std::cout << "=== Trace variants (activity-log multiset) ===\n";
  for (const auto* log : {&ca, &cb}) {
    const auto al = model::ActivityLog::build(*log, f);
    for (const auto& [trace, mult] : al.variants()) {
      std::cout << log->cases().front().id().cid << ": trace of " << trace.size()
                << " activities with multiplicity " << mult << "\n";
    }
  }
  std::cout << "\n=== Fig. 3b: G[L(Ca)] — ls ===\n"
            << dfg::render_ascii(g_ca, &stats, &blue);
  std::cout << "\n=== Fig. 3c: G[L(Cb)] — ls -l ===\n"
            << dfg::render_ascii(g_cb, &stats, &blue, {.show_stats = true, .show_ranks = true});

  const dfg::PartitionColoring partition(g_ca, g_cb);
  std::cout << "\n=== Fig. 3d: G[L(Cx)] — partition coloring (GREEN=ls only, RED=ls -l only) "
               "===\n"
            << dfg::render_ascii(g_cx, &stats, &partition);
  return 0;
}
