// FIG8a — DFG synthesis applied to ALL events of the SSF + FPP runs.
//
// 96 ranks per run across 2 nodes (the paper's scale), POSIX API,
// mapping f-bar = call + site-abstracted path, statistics coloring by
// relative duration. The expected shape: openat/write under $SCRATCH
// carry by far the highest Load.
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace st;
  iosim::CampaignScale scale;
  if (argc > 1) scale.num_ranks = std::atoi(argv[1]);  // optional override

  const auto log = iosim::ssf_fpp_campaign(scale);
  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto g = dfg::build_serial(log, f);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring blue(stats);

  std::cout << "=== Fig. 8a: G[L(CX)] over all events of SSF+FPP (" << log.case_count()
            << " cases, " << log.total_events() << " events) ===\n"
            << dfg::render_ascii(g, &stats, &blue);
  return 0;
}
