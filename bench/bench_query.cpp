// OVH-QUERY — the indexed query planner vs the materialize-then-filter
// scan, over the SAME stored corpus (this PR's acceptance metric:
// >= 5x at <= 1% selectivity).
//
// The corpus is built so call-restricted queries hit four selectivity
// tiers exactly:
//
//   sel0     calls{statx}   no case contains it — pure index prune
//   sel1     calls{openat}  1 case in 128 (~0.8%) — posting-list prune,
//                           residual scan over the survivors only
//   sel50    calls{write}   every second case — zone/set pruning is
//                           useless, the win is dictionary-id compare
//                           over raw columns instead of string match
//   sel100   calls{read}    every case — worst case for the planner;
//                           parity with the scan is the goal here
//
// BM_QueryScan    Query::apply over the fully materialized EventLog
//                 (what serve mode did before the planner);
// BM_QueryIndexed select_v2 over the mmap'd container: compile the
//                 query against the file dictionary once, prune via
//                 posting lists / zone maps / id sets, materialize
//                 survivors only;
// BM_QueryNoIndex select_v2 over the same corpus written WITHOUT index
//                 sections — the column-scan fallback path, so the
//                 json records what the fallback costs relative to both.
//
// run_bench.sh turns these into BENCH_query.json's
// indexed_speedup_by_selectivity / indexed_speedup_at_1pct_selectivity.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "elog/v2_select.hpp"
#include "elog/v2_store.hpp"
#include "model/event_log.hpp"
#include "model/query.hpp"
#include "support/rng.hpp"

namespace {

using namespace st;
namespace fs = std::filesystem;

constexpr std::size_t kCases = 2048;
constexpr std::size_t kEventsPerCase = 32;

/// 2048 cases x 32 events with a controlled call mix: every case has
/// read/close/lseek, every second case has write, one case in 128 has
/// a single openat, and no case has statx.
model::EventLog selectivity_log() {
  Xoshiro256 rng(17);
  model::EventLog log;
  const std::string_view read = log.arena().intern("read");
  const std::string_view write = log.arena().intern("write");
  const std::string_view close = log.arena().intern("close");
  const std::string_view lseek = log.arena().intern("lseek");
  const std::string_view openat = log.arena().intern("openat");
  std::vector<std::string_view> paths;
  for (int i = 0; i < 16; ++i) {
    paths.push_back(log.arena().intern("/p/scratch/ssf/f" + std::to_string(i)));
  }
  const std::string_view cid = log.arena().intern("bench");
  const std::string_view host = log.arena().intern("node1");
  for (std::size_t c = 0; c < kCases; ++c) {
    std::vector<model::Event> events;
    events.reserve(kEventsPerCase);
    Micros t = static_cast<Micros>(c) * 1000000;
    for (std::size_t i = 0; i < kEventsPerCase; ++i) {
      model::Event e;
      e.cid = cid;
      e.host = host;
      e.rid = c + 1;
      e.pid = c + 100;
      if (i == 0 && c % 128 == 0) {
        e.call = openat;  // the ~1% tier
      } else if (c % 2 == 0 && i % 4 == 1) {
        e.call = write;  // the ~50% tier
      } else {
        e.call = (i % 3 == 0) ? read : (i % 3 == 1 ? close : lseek);
      }
      e.fp = paths[rng.below(paths.size())];
      e.start = t;
      e.dur = static_cast<Micros>(1 + rng.below(200));
      e.size = e.call == read || e.call == write
                   ? static_cast<std::int64_t>(rng.below(1 << 20))
                   : -1;
      t += static_cast<Micros>(1 + rng.below(50));
      events.push_back(std::move(e));
    }
    log.add_case(model::Case(model::CaseId{"bench", "node1", c + 1}, std::move(events)));
  }
  return log;
}

/// One corpus, three views: the materialized log (scan baseline), the
/// indexed container, and the same bytes written without indexes.
struct QueryCorpus {
  model::EventLog base;
  std::shared_ptr<elog::MappedElog> indexed;
  std::shared_ptr<elog::MappedElog> bare;
};

const QueryCorpus& corpus() {
  static const QueryCorpus c = [] {
    QueryCorpus out;
    const fs::path dir = fs::temp_directory_path() / "st_bench_query_corpus";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto log = selectivity_log();
    const std::string indexed_path = (dir / "indexed.elog").string();
    const std::string bare_path = (dir / "bare.elog").string();
    elog::write_event_log_v2_file(indexed_path, log);
    elog::write_event_log_v2_file(bare_path, log, elog::ElogV2WriterOptions{false});
    out.indexed = elog::open_v2(indexed_path);
    out.bare = elog::open_v2(bare_path);
    // The scan baseline materializes from the same container, exactly
    // the EventLog serve mode holds resident.
    out.base = elog::read_event_log_v2(out.indexed);
    return out;
  }();
  return c;
}

std::int64_t survivors(const model::EventLog& log) {
  std::int64_t n = 0;
  for (const auto& c : log.cases()) n += static_cast<std::int64_t>(c.events().size());
  return n;
}

void BM_QueryScan(benchmark::State& state, const char* text) {
  const auto& cor = corpus();
  const auto q = model::Query::parse(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survivors(q.apply(cor.base)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kCases * kEventsPerCase));
}

void BM_QueryIndexed(benchmark::State& state, const char* text) {
  const auto& cor = corpus();
  const auto q = model::Query::parse(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survivors(elog::select_v2(cor.indexed, q)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kCases * kEventsPerCase));
}

void BM_QueryNoIndex(benchmark::State& state, const char* text) {
  const auto& cor = corpus();
  const auto q = model::Query::parse(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survivors(elog::select_v2(cor.bare, q)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kCases * kEventsPerCase));
}

BENCHMARK_CAPTURE(BM_QueryScan, sel0, "calls{statx}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryScan, sel1, "calls{openat}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryScan, sel50, "calls{write}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryScan, sel100, "calls{read}")->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_QueryIndexed, sel0, "calls{statx}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryIndexed, sel1, "calls{openat}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryIndexed, sel50, "calls{write}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryIndexed, sel100, "calls{read}")->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_QueryNoIndex, sel1, "calls{openat}")->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryNoIndex, sel50, "calls{write}")->Unit(benchmark::kMicrosecond);

// Combined restrictions at the ~1% tier: the posting-list prune plus a
// residual fp + window predicate over the survivors — the interactive
// "narrow it down" query shape serve mode sees most.
BENCHMARK_CAPTURE(BM_QueryScan, sel1_combined,
                  "calls{openat} fp~/p/scratch t[0,2000000000000)")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_QueryIndexed, sel1_combined,
                  "calls{openat} fp~/p/scratch t[0,2000000000000)")
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
