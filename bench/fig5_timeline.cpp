// FIG5 — the timeline plot t_f("read:/usr/lib", Cb).
//
// One row per case of the ls -l event log; '=' bars are the event
// intervals (start to start+dur). The sweep over these intervals
// yields the max-concurrency statistic (Eq. 16).
#include <iostream>

#include "dfg/stats.hpp"
#include "dfg/render.hpp"
#include "iosim/commands.hpp"

int main() {
  using namespace st;
  const auto cb = iosim::make_ls_l_traces().to_event_log();
  const auto f = model::Mapping::call_top_dirs(2);

  const auto entries = dfg::IoStatistics::timeline(cb, f, "read\n/usr/lib");
  std::cout << "=== Fig. 5: timeline of t_f(\"read:/usr/lib\", Cb) ===\n"
            << dfg::render_timeline(entries, 60);
  return 0;
}
