// CPLX-MC — max-concurrency (Eq. 16) is an O(k log k) interval sweep
// in the number of events k of one activity.
#include <benchmark/benchmark.h>

#include "dfg/concurrency.hpp"
#include "support/rng.hpp"

namespace {

using namespace st;

std::vector<dfg::Interval> random_intervals(std::size_t k, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<dfg::Interval> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Micros start = static_cast<Micros>(rng.below(1'000'000));
    out.push_back({start, start + static_cast<Micros>(rng.below(10'000))});
  }
  return out;
}

void BM_MaxConcurrency(benchmark::State& state) {
  const auto intervals = random_intervals(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    auto copy = intervals;  // the sweep sorts in place
    benchmark::DoNotOptimize(dfg::get_max_concurrency(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxConcurrency)->Range(1 << 8, 1 << 18)->Complexity(benchmark::oNLogN);

void BM_MaxConcurrency_AllOverlapping(benchmark::State& state) {
  // Worst case for the heap: every interval stays open.
  std::vector<dfg::Interval> intervals(static_cast<std::size_t>(state.range(0)),
                                       dfg::Interval{0, 1'000'000});
  for (auto _ : state) {
    auto copy = intervals;
    benchmark::DoNotOptimize(dfg::get_max_concurrency(std::move(copy)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MaxConcurrency_AllOverlapping)->Range(1 << 8, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
