// CPLX-DFG — DFG construction is O(n) and scalable (Sec. V step 3;
// refs [24][25]).
//
// Sweeps the event count for the serial single-pass builder and
// compares against the parallel map-reduce builder at several pool
// widths.
#include <benchmark/benchmark.h>

#include "dfg/builder.hpp"
#include "support/rng.hpp"
#include "testdata.hpp"

namespace {

using namespace st;

/// O(n) serial construction.
void BM_BuildSerial(benchmark::State& state) {
  const auto log = bench::synthetic_log(/*seed=*/1, /*cases=*/64,
                                        static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::build_serial(log, f));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetComplexityN(static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_BuildSerial)->Range(1 << 10, 1 << 17)->Complexity(benchmark::oN);

/// Map-reduce construction: threads sweep at a fixed event count.
void BM_BuildParallel(benchmark::State& state) {
  const auto log = bench::synthetic_log(1, 256, 512, 16);  // 128k events
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::build_parallel(log, f, pool));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_BuildParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Merge cost grows with graph size, not event count.
void BM_DfgMerge(benchmark::State& state) {
  const auto log = bench::synthetic_log(2, 32, 256, static_cast<std::size_t>(state.range(0)));
  const auto f = model::Mapping::call_top_dirs(2);
  const auto g = dfg::build_serial(log, f);
  for (auto _ : state) {
    dfg::Dfg acc;
    acc.merge(g);
    acc.merge(g);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DfgMerge)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
