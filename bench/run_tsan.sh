#!/usr/bin/env bash
# Sibling of run_sanitize.sh: builds the ThreadSanitizer preset and
# race-checks the concurrency-dense handoff code — the StageQueue /
# ThreadPool pipeline (test_stage_queue, test_pipeline_stream,
# test_pipeline_sinks) plus the sink partials and shard coordinator
# (test_stats_sinks, test_shard; elog_tool is built so the
# posix_spawn subprocess tests run instead of skipping) plus the
# serve-mode catalog (test_catalog: single-flight stampedes and
# concurrent mixed access against the LRU memo table). ASan proves
# the pipeline's lifetime story; this proves its synchronization
# story. CI runs the same selection in the tsan job.
#
#   bench/run_tsan.sh [build-dir]
#
# Requires a compiler with -fsanitize=thread (gcc/clang).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$build_dir" -j "$(nproc)" \
  --target test_stage_queue test_pipeline_stream test_pipeline_sinks \
  test_stats_sinks test_shard test_catalog elog_tool

TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$build_dir" \
  -R 'test_stage_queue|test_pipeline_stream|test_pipeline_sinks|test_stats_sinks|test_shard|test_catalog' \
  --output-on-failure

echo "tsan suite passed"
