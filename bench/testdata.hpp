// Synthetic event-log generators shared by the scaling benchmarks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/event_log.hpp"
#include "support/rng.hpp"

namespace st::bench {

/// `cases` cases of `events_per_case` events over `distinct_paths`
/// file paths (which bounds the activity count m of the DFG).
inline model::EventLog synthetic_log(std::uint64_t seed, std::size_t cases,
                                     std::size_t events_per_case, std::size_t distinct_paths) {
  Xoshiro256 rng(seed);
  model::EventLog log;
  // Event string fields are views; intern the distinct strings once
  // into the log's own arena so the log is self-contained.
  const std::vector<std::string_view> calls = {
      log.arena().intern("read"), log.arena().intern("write"), log.arena().intern("openat"),
      log.arena().intern("lseek")};
  std::vector<std::string_view> paths;
  paths.reserve(distinct_paths);
  for (std::size_t i = 0; i < distinct_paths; ++i) {
    paths.push_back(
        log.arena().intern("/data/dir" + std::to_string(i) + "/file" + std::to_string(i)));
  }
  const std::string_view cid = log.arena().intern("bench");
  const std::string_view host = log.arena().intern("node1");
  for (std::size_t c = 0; c < cases; ++c) {
    std::vector<model::Event> events;
    events.reserve(events_per_case);
    Micros t = 0;
    for (std::size_t i = 0; i < events_per_case; ++i) {
      model::Event e;
      e.cid = cid;
      e.host = host;
      e.rid = c + 1;
      e.pid = c + 100;
      e.call = calls[rng.below(calls.size())];
      e.fp = paths[rng.below(paths.size())];
      e.start = t;
      e.dur = static_cast<Micros>(1 + rng.below(200));
      e.size = (e.call == "read" || e.call == "write")
                   ? static_cast<std::int64_t>(rng.below(1 << 20))
                   : -1;
      t += static_cast<Micros>(1 + rng.below(50));
      events.push_back(std::move(e));
    }
    log.add_case(model::Case(model::CaseId{"bench", "node1", c + 1}, std::move(events)));
  }
  return log;
}

}  // namespace st::bench
