// FIG4 — DFG synthesis restricted to the /usr/lib directory.
//
// The mapping f1 maps an event to an activity only if its file path
// contains "/usr/lib"; the activity keeps the last two path components
// so individual libraries become nodes.
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/commands.hpp"

int main() {
  using namespace st;
  const auto cx = model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                         iosim::make_ls_l_traces().to_event_log());

  const auto f1 = model::Mapping::call_last_components(2).filtered_fp("/usr/lib");
  const auto g = dfg::build_serial(cx, f1);
  const auto stats = dfg::IoStatistics::compute(cx, f1);
  const dfg::StatisticsColoring blue(stats);

  std::cout << "=== Fig. 4: G[L_f1(Cx)] — file-access footprint of /usr/lib ===\n"
            << dfg::render_ascii(g, &stats, &blue) << "\n";
  std::cout << "=== Same graph as Graphviz DOT ===\n"
            << dfg::render_dot(g, &stats, &blue, {.graph_name = "Fig4"});
  return 0;
}
