// CPLX-MAP — the mapping application is O(n) and row-independent
// (Sec. V step 2), plus an end-to-end pipeline benchmark covering
// Fig. 6's steps: filter -> map -> DFG -> statistics.
#include <benchmark/benchmark.h>

#include "dfg/builder.hpp"
#include "dfg/stats.hpp"
#include "model/activity_log.hpp"
#include "testdata.hpp"

namespace {

using namespace st;

void BM_MappingApplication(benchmark::State& state) {
  const auto log = bench::synthetic_log(8, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    std::size_t mapped = 0;
    for (const auto& c : log.cases()) {
      for (const auto& e : c.events()) {
        if (f(e)) ++mapped;
      }
    }
    benchmark::DoNotOptimize(mapped);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetComplexityN(static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_MappingApplication)->Range(1 << 10, 1 << 17)->Complexity(benchmark::oN);

void BM_FpFilter(benchmark::State& state) {
  const auto log = bench::synthetic_log(9, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.filter_fp("/data/dir3"));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_FpFilter)->Range(1 << 10, 1 << 15);

void BM_ActivityLogBuild(benchmark::State& state) {
  const auto log = bench::synthetic_log(10, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ActivityLog::build(log, f));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_ActivityLogBuild)->Range(1 << 10, 1 << 15);

/// The whole Fig. 6 pipeline on one thread.
void BM_FullPipeline(benchmark::State& state) {
  const auto log = bench::synthetic_log(11, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    const auto filtered = log.filter_fp("/data");
    const auto g = dfg::build_serial(filtered, f);
    const auto stats = dfg::IoStatistics::compute(filtered, f);
    benchmark::DoNotOptimize(g);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_FullPipeline)->Range(1 << 10, 1 << 15);

}  // namespace

BENCHMARK_MAIN();
