// CPLX-MAP — the mapping application is O(n) and row-independent
// (Sec. V step 2), plus an end-to-end pipeline benchmark covering
// Fig. 6's steps: filter -> map -> DFG -> statistics, the
// staged-vs-streamed trace -> EventLog -> DFG comparison feeding
// BENCH_pipeline.json's pipeline_overlap_speedup_vs_staged, and the
// multi-sink comparison (one pipeline::run pass folding DFG + case
// stats + variants vs the same analytics as N staged passes) feeding
// multi_sink_single_pass_speedup_vs_staged.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "dfg/builder.hpp"
#include "dfg/stats.hpp"
#include "model/activity_log.hpp"
#include "model/case_stats.hpp"
#include "model/from_strace.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/sink.hpp"
#include "pipeline/stream.hpp"
#include "strace/filename.hpp"
#include "strace/reader.hpp"
#include "support/timeparse.hpp"
#include "testdata.hpp"

namespace {

using namespace st;

void BM_MappingApplication(benchmark::State& state) {
  const auto log = bench::synthetic_log(8, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    std::size_t mapped = 0;
    for (const auto& c : log.cases()) {
      for (const auto& e : c.events()) {
        if (f(e)) ++mapped;
      }
    }
    benchmark::DoNotOptimize(mapped);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetComplexityN(static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_MappingApplication)->Range(1 << 10, 1 << 17)->Complexity(benchmark::oN);

void BM_FpFilter(benchmark::State& state) {
  const auto log = bench::synthetic_log(9, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.filter_fp("/data/dir3"));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_FpFilter)->Range(1 << 10, 1 << 15);

void BM_ActivityLogBuild(benchmark::State& state) {
  const auto log = bench::synthetic_log(10, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ActivityLog::build(log, f));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_ActivityLogBuild)->Range(1 << 10, 1 << 15);

/// The whole Fig. 6 pipeline on one thread.
void BM_FullPipeline(benchmark::State& state) {
  const auto log = bench::synthetic_log(11, 64, static_cast<std::size_t>(state.range(0)) / 64, 16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    const auto filtered = log.filter_fp("/data");
    const auto g = dfg::build_serial(filtered, f);
    const auto stats = dfg::IoStatistics::compute(filtered, f);
    benchmark::DoNotOptimize(g);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_FullPipeline)->Range(1 << 10, 1 << 15);

// ---- staged vs streamed trace -> EventLog -> DFG -----------------------

/// On-disk strace corpus: one big file plus a swarm of small ones (the
/// mixed-parallelism workload), written once and removed at exit.
class TraceCorpus {
 public:
  static const std::vector<std::string>& paths() {
    static TraceCorpus corpus;
    return corpus.paths_;
  }

 private:
  TraceCorpus() {
    namespace fs = std::filesystem;
    // Unique per process: concurrent runs (CI + local) must not share
    // — or remove_all — each other's live corpus.
    std::random_device rd;
    dir_ = fs::temp_directory_path() /
           ("st_bench_pipeline_" + std::to_string(rd()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    paths_.push_back(write("big_nodeA_9001.st", make_trace(20000, 7)));
    for (int i = 0; i < 8; ++i) {
      paths_.push_back(write("s" + std::to_string(i) + "_nodeB_" + std::to_string(9100 + i) +
                                 ".st",
                             make_trace(1500, static_cast<std::uint64_t>(100 + i))));
    }
  }
  ~TraceCorpus() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static std::string make_trace(std::size_t lines, std::uint64_t pid) {
    std::string text;
    Micros t = 36000000000;  // 10:00:00
    const std::string p = std::to_string(pid);
    for (std::size_t i = 0; i < lines; ++i) {
      t += 100;
      switch (i % 4) {
        case 0:
          text += p + "  " + format_time_of_day(t) +
                  " read(3</p/data/f" + std::to_string(i % 16) +
                  ">, \"\"..., 65536) = 65536 <0.000040>\n";
          break;
        case 1:
          text += p + "  " + format_time_of_day(t) +
                  " openat(AT_FDCWD, \"/p/scratch/ssf/t" + std::to_string(i % 8) +
                  "\", O_RDWR|O_CREAT, 0644) = 5 <0.000150>\n";
          break;
        case 2:
          text += p + "  " + format_time_of_day(t) +
                  " pwrite64(5</p/scratch/ssf/t" + std::to_string(i % 8) +
                  ">, \"\"..., 1048576, 33554432) = 1048576 <0.000294>\n";
          break;
        default:
          text += p + "  " + format_time_of_day(t) +
                  " lseek(5</p/scratch/ssf/t" + std::to_string(i % 8) +
                  ">, 0, SEEK_SET) = 0 <0.000002>\n";
          break;
      }
    }
    return text;
  }

  std::string write(const std::string& name, const std::string& text) {
    const auto p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  std::filesystem::path dir_;
  std::vector<std::string> paths_;
};

/// The barrier-separated reference: parse ALL files (mixed work queue),
/// then convert ALL files (parallel_for on the same pool), then
/// build_parallel — the pre-pipeline construction, kept here as the
/// baseline pipeline_overlap_speedup_vs_staged is measured against.
dfg::Dfg staged_trace_to_dfg(const std::vector<std::string>& paths, const model::Mapping& f,
                             ThreadPool& pool) {
  std::vector<strace::TraceFileId> ids;
  ids.reserve(paths.size());
  for (const auto& p : paths) ids.push_back(*strace::parse_trace_filename(p));

  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  auto results = strace::read_trace_files_mixed(paths, opts);  // barrier 1

  const std::size_t n = results.size();
  const std::size_t chunks = default_chunks(pool, n);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<model::Case> cases(n);
  std::vector<std::shared_ptr<strace::StringArena>> arenas(chunks);
  parallel_for(pool, 0, chunks, [&](std::size_t c) {  // barrier 2
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) return;
    auto arena = std::make_shared<strace::StringArena>();
    for (std::size_t i = lo; i < hi; ++i) {
      cases[i] = model::case_from_records(ids[i], results[i].records, *arena);
    }
    arenas[c] = std::move(arena);
  });
  model::EventLog log;
  for (auto& arena : arenas) {
    if (arena) log.adopt(std::move(arena));
  }
  for (std::size_t i = 0; i < n; ++i) {
    log.add_case(std::move(cases[i]));
    log.adopt(std::move(results[i].buffer));
  }
  return dfg::build_parallel(log, f, pool);  // barrier 3
}

void BM_PipelineStaged(benchmark::State& state) {
  const auto& paths = TraceCorpus::paths();
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t traces = 0;
  for (auto _ : state) {
    const auto g = staged_trace_to_dfg(paths, f, pool);
    traces += g.trace_count();
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(traces));
}
BENCHMARK(BM_PipelineStaged)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PipelineStreamed(benchmark::State& state) {
  const auto& paths = TraceCorpus::paths();
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t traces = 0;
  for (auto _ : state) {
    const auto result = pipeline::trace_to_dfg(paths, f, pool);
    traces += result.graph.trace_count();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(traces));
}
BENCHMARK(BM_PipelineStreamed)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---- multi-sink single pass vs N staged analytic passes ----------------

/// The pre-sink workflow: ingest the log (streaming pipeline, the best
/// ingest-only path), THEN walk the event arrays once per analytic —
/// graph, case summaries, variant multiset — behind the ingestion
/// barrier. Baseline for multi_sink_single_pass_speedup_vs_staged.
void BM_MultiSinkStaged(benchmark::State& state) {
  const auto& paths = TraceCorpus::paths();
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t traces = 0;
  for (auto _ : state) {
    const auto log = pipeline::event_log_streamed(paths, pool);  // barrier
    const auto g = dfg::build_parallel(log, f, pool);            // pass 1
    const auto summaries = model::summarize_cases(log, pool);    // pass 2
    const auto variants = model::ActivityLog::build(log, f).variants();  // pass 3
    traces += g.trace_count();
    benchmark::DoNotOptimize(g);
    benchmark::DoNotOptimize(summaries);
    benchmark::DoNotOptimize(variants);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(traces));
}
BENCHMARK(BM_MultiSinkStaged)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// One pipeline::run pass: the same three analytics fold on the pool
/// while the files parse — no barrier, no re-walks.
void BM_MultiSinkSinglePass(benchmark::State& state) {
  const auto& paths = TraceCorpus::paths();
  const auto f = model::Mapping::call_top_dirs(2);
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::uint64_t traces = 0;
  for (auto _ : state) {
    pipeline::DfgSink graph_sink(f);
    pipeline::CaseStatsSink stats_sink;
    pipeline::VariantsSink variants_sink(f);
    const auto log =
        pipeline::run(paths, pool, {&graph_sink, &stats_sink, &variants_sink});
    traces += graph_sink.graph().trace_count();
    benchmark::DoNotOptimize(log);
    benchmark::DoNotOptimize(graph_sink);
    benchmark::DoNotOptimize(stats_sink);
    benchmark::DoNotOptimize(variants_sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(traces));
}
BENCHMARK(BM_MultiSinkSinglePass)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
