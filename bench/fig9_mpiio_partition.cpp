// FIG9 — partition-colored DFG of the MPI-IO vs POSIX experiment.
//
// Both runs in SSF mode; lseek traced in addition to openat/read/write
// variants. GREEN elements occur only in the MPI-IO run (-a mpiio),
// RED only in the POSIX run. Expected shape: MPI-IO uses pread64/
// pwrite64 (green); the POSIX run needs an lseek before every access
// (red lseek nodes with high frequency); the run with MPI-IO issues
// fewer system calls and a lower overall load. openat nodes are
// skipped, as in the paper's rendering.
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace st;
  iosim::CampaignScale scale;
  if (argc > 1) scale.num_ranks = std::atoi(argv[1]);

  const auto log = iosim::mpiio_campaign(scale);
  const auto no_openat =
      log.filter_events([](const model::Event& e) { return !e.call.starts_with("openat"); });

  const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 0);
  const auto [mpiio_log, posix_log] =
      no_openat.partition([](const model::Case& c) { return c.id().cid == "mpiio"; });

  const auto g = dfg::build_serial(no_openat, f);
  const auto stats = dfg::IoStatistics::compute(no_openat, f);
  const dfg::PartitionColoring partition(dfg::build_serial(mpiio_log, f),
                                         dfg::build_serial(posix_log, f));

  std::cout << "=== Fig. 9: G[L(CY)] — GREEN = MPI-IO only, RED = POSIX only ===\n"
            << dfg::render_ascii(g, &stats, &partition) << "\n";

  auto count_lseek = [](const model::EventLog& l) {
    std::size_t n = 0;
    for (const auto& c : l.cases()) {
      for (const auto& e : c.events()) {
        if (e.call == "lseek") ++n;
      }
    }
    return n;
  };
  auto total_dur = [](const model::EventLog& l) {
    Micros t = 0;
    for (const auto& c : l.cases()) {
      for (const auto& e : c.events()) t += e.dur;
    }
    return t;
  };
  std::cout << "lseek calls:  POSIX=" << count_lseek(posix_log)
            << "  MPI-IO=" << count_lseek(mpiio_log) << "\n";
  std::cout << "syscalls:     POSIX=" << posix_log.total_events()
            << "  MPI-IO=" << mpiio_log.total_events() << "\n";
  std::cout << "total I/O us: POSIX=" << total_dur(posix_log)
            << "  MPI-IO=" << total_dur(mpiio_log) << "\n";
  return 0;
}
