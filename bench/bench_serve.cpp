// bench_serve — serve-mode latency under concurrent mixed traffic.
//
// Unlike its siblings this is a plain main, not google-benchmark: the
// quantity of interest is the LATENCY DISTRIBUTION of individual
// requests under a stampede of clients (p50/p99 plus the catalog's
// cache hit-rate), which google-benchmark's per-iteration mean cannot
// express. It still tolerates (and ignores) --benchmark_* flags so the
// CI bench-smoke loop, which passes --benchmark_min_time to every
// bench_* binary, runs it unmodified.
//
//   bench_serve [--clients=N] [--requests=M] [--cache-entries=K]
//               [--cases=C] [--events=E]
//
// Drives N client threads, each issuing M requests from a fixed mixed
// workload (query / report / diff / stat over 8 distinct queries)
// through corpus::handle_request against one resident Catalog, and
// prints a JSON record to stdout — run_bench.sh wraps it into
// BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <unistd.h>

#include "corpus/catalog.hpp"
#include "corpus/serve.hpp"
#include "elog/v2_store.hpp"
#include "parallel/thread_pool.hpp"
#include "testdata.hpp"

namespace {

struct Options {
  std::size_t clients = 4;
  std::size_t requests = 64;       ///< per client
  std::size_t cache_entries = 16;  ///< small enough that eviction happens
  // Sized so a COLD full report lands in the hundreds of milliseconds
  // (report rendering is superlinear in events; at 512x64 a single
  // report takes ~25s and the mix measures nothing but it).
  std::size_t cases = 128;
  std::size_t events = 16;  ///< per case
};

/// Lenient flag loop: unknown flags (notably --benchmark_*) are
/// ignored rather than fatal, so the CI smoke pass works unchanged.
Options parse_args(int argc, char** argv) {
  Options o;
  auto value = [](std::string_view arg, std::string_view flag, std::size_t& out) {
    if (!arg.starts_with(flag)) return false;
    out = static_cast<std::size_t>(std::strtoull(arg.substr(flag.size()).data(), nullptr, 10));
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (value(arg, "--clients=", o.clients) || value(arg, "--requests=", o.requests) ||
        value(arg, "--cache-entries=", o.cache_entries) || value(arg, "--cases=", o.cases) ||
        value(arg, "--events=", o.events)) {
      continue;
    }
  }
  if (o.clients == 0) o.clients = 1;
  if (o.requests == 0) o.requests = 1;
  return o;
}

/// The fixed request mix. Weighted towards the cheap verbs the way
/// interactive exploration is: many narrow queries, some reports, the
/// occasional diff and stat probe. Every line is canonical-or-lenient
/// grammar that resolves to one of 8 distinct cache keys per kind.
const std::vector<std::string>& workload() {
  static const std::vector<std::string> kRequests = {
      "query fp~/data/dir1",
      "query fp~/data/dir2",
      "query calls{read}",
      "query calls{write}",
      "query fp~/data/dir1 calls{read,write}",
      "report fp~/data/dir1",
      "report calls{read}",
      "report all",
      "diff calls{read} :: calls{write}",
      "diff fp~/data/dir1 :: fp~/data/dir2",
      "query t[0,50000000)",
      "query hosts{node1}",
      "stat all",
      "stat fp~/data/dir1",
      "query fp~/data/dir2 calls{read}",
      "report fp~/data/dir2",
  };
  return kRequests;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);

  // A self-contained corpus, round-tripped through elog v2 so the
  // catalog loads the way serve mode does in production (mmap'd
  // container, not in-memory handoff).
  const auto elog_path = std::filesystem::temp_directory_path() /
                         ("bench_serve_" + std::to_string(::getpid()) + ".elog");
  st::elog::write_event_log_v2_file(elog_path.string(),
                                    st::bench::synthetic_log(42, o.cases, o.events, 64));

  st::corpus::CatalogOptions copts;
  copts.cache_capacity = o.cache_entries;
  st::corpus::Catalog catalog(copts);
  st::ThreadPool pool(o.clients);
  catalog.load({elog_path.string()}, pool);
  std::filesystem::remove(elog_path);

  const auto& requests = workload();

  // Warm nothing: the measured run includes the cold misses, exactly
  // like a freshly started server taking its first traffic burst.
  //
  // Each workload line is one cache key; the first request to claim a
  // line is tagged cold, every later one warm. This is first-SEEN, not
  // first-COMPUTED: concurrent requests for the same line block on the
  // catalog's single-flight and pay cold latency while tagged warm, and
  // an eviction refill is likewise tagged warm — so the cold/warm split
  // understates the gap slightly rather than flattering it.
  struct Sample {
    std::string_view verb;
    double us;
    bool cold;
  };
  std::vector<std::vector<Sample>> per_client(o.clients);
  std::vector<std::atomic_flag> seen(requests.size());
  std::atomic<std::size_t> failures{0};

  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(o.clients);
    for (std::size_t c = 0; c < o.clients; ++c) {
      clients.emplace_back([&, c] {
        auto& samples = per_client[c];
        samples.reserve(o.requests);
        for (std::size_t i = 0; i < o.requests; ++i) {
          // Deterministic per-thread interleave: clients start at
          // different offsets and stride co-prime to the table size,
          // so the mix overlaps without being lock-step.
          const std::size_t slot = (c * 7 + i * 5) % requests.size();
          const auto& line = requests[slot];
          const bool cold = !seen[slot].test_and_set(std::memory_order_relaxed);
          const auto t0 = std::chrono::steady_clock::now();
          const auto r = st::corpus::handle_request(catalog, line);
          const auto t1 = std::chrono::steady_clock::now();
          if (!r.ok) failures.fetch_add(1, std::memory_order_relaxed);
          samples.push_back(
              {std::string_view(line).substr(0, line.find(' ')),
               std::chrono::duration<double, std::micro>(t1 - t0).count(), cold});
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  std::vector<double> all_us;
  std::map<std::string, std::vector<double>> by_verb;
  std::map<std::string, std::vector<double>> by_verb_cold;
  std::map<std::string, std::vector<double>> by_verb_warm;
  for (const auto& samples : per_client) {
    for (const auto& s : samples) {
      all_us.push_back(s.us);
      by_verb[std::string(s.verb)].push_back(s.us);
      (s.cold ? by_verb_cold : by_verb_warm)[std::string(s.verb)].push_back(s.us);
    }
  }
  std::sort(all_us.begin(), all_us.end());

  const auto stats = catalog.cache_stats();
  const double lookups = static_cast<double>(stats.hits + stats.misses);
  const double hit_rate = lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
  const auto base = catalog.base();

  std::printf("{\n");
  std::printf("  \"clients\": %zu,\n", o.clients);
  std::printf("  \"requests_per_client\": %zu,\n", o.requests);
  std::printf("  \"total_requests\": %zu,\n", all_us.size());
  std::printf("  \"failed_requests\": %zu,\n", failures.load());
  std::printf("  \"corpus\": {\"cases\": %zu, \"events\": %zu},\n", base->case_count(),
              base->total_events());
  std::printf("  \"wall_seconds\": %.4f,\n", wall_s);
  std::printf("  \"requests_per_second\": %.1f,\n",
              wall_s > 0 ? static_cast<double>(all_us.size()) / wall_s : 0.0);
  std::printf("  \"latency_us\": {\n");
  std::printf("    \"overall\": {\"p50\": %.1f, \"p99\": %.1f, \"max\": %.1f},\n",
              percentile(all_us, 50), percentile(all_us, 99), all_us.empty() ? 0.0 : all_us.back());
  std::printf("    \"per_verb\": {");
  bool first = true;
  for (auto& [verb, samples] : by_verb) {
    std::sort(samples.begin(), samples.end());
    std::printf("%s\n      \"%s\": {\"p50\": %.1f, \"p99\": %.1f, \"count\": %zu}",
                first ? "" : ",", verb.c_str(), percentile(samples, 50), percentile(samples, 99),
                samples.size());
    first = false;
  }
  std::printf("\n    },\n");
  // The first-seen / later-hit split per verb. report is the headline:
  // a cold full-HTML render vs the cache hit that replaces it.
  std::printf("    \"cold_warm\": {");
  first = true;
  for (auto& [verb, samples] : by_verb) {
    auto split_stats = [&](std::map<std::string, std::vector<double>>& side) {
      auto it = side.find(verb);
      if (it == side.end()) return std::string("{\"count\": 0}");
      std::sort(it->second.begin(), it->second.end());
      char buf[96];
      std::snprintf(buf, sizeof(buf), "{\"p50\": %.1f, \"p99\": %.1f, \"count\": %zu}",
                    percentile(it->second, 50), percentile(it->second, 99), it->second.size());
      return std::string(buf);
    };
    std::printf("%s\n      \"%s\": {\"cold\": %s, \"warm\": %s}", first ? "" : ",", verb.c_str(),
                split_stats(by_verb_cold).c_str(), split_stats(by_verb_warm).c_str());
    first = false;
  }
  std::printf("\n    }\n");
  std::printf("  },\n");
  std::printf("  \"cache\": {\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
              "\"entries\": %zu, \"hit_rate\": %.3f}\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions), stats.entries, hit_rate);
  std::printf("}\n");
  return failures.load() == 0 ? 0 : 1;
}
