// ABL-CONT — ablation of the contention model (DESIGN.md substitution 1).
//
// The Fig. 8 reproduction rests on two modeled mechanisms:
//   (a) token revocation on shared opens   (token_revoke_us)
//   (b) write dilation on shared inodes    (write_contention_alpha)
// This ablation switches each off and prints the resulting $SCRATCH
// loads — demonstrating which constant produces which feature of the
// figure (and that the qualitative SSF >> FPP signal needs BOTH).
#include <cstdio>
#include <iostream>

#include "dfg/stats.hpp"
#include "iosim/campaign.hpp"

int main() {
  using namespace st;
  iosim::CampaignScale scale;
  scale.num_ranks = 32;  // enough ranks for contention, fast to run
  scale.ranks_per_node = 16;

  struct Config {
    const char* name;
    double revoke;
    double alpha;
  };
  const Config configs[] = {
      {"full model          ", 5500.0, 0.30},
      {"no token revocation ", 0.0, 0.30},
      {"no write dilation   ", 5500.0, 0.0},
      {"no contention at all", 0.0, 0.0},
      {"alpha x3            ", 5500.0, 0.90},
  };

  std::printf("%-22s %10s %10s %10s %10s\n", "config", "open ssf", "write ssf", "open fpp",
              "write fpp");
  for (const auto& cfg : configs) {
    iosim::CostModel model;
    model.token_revoke_us = cfg.revoke;
    model.write_contention_alpha = cfg.alpha;
    const auto log = iosim::ssf_fpp_campaign(scale, model);
    const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1)
                       .filtered_fp("/p/scratch");
    const auto stats = dfg::IoStatistics::compute(log, f);
    auto load = [&](const char* a) {
      const auto* s = stats.find(a);
      return s != nullptr ? s->rel_dur : 0.0;
    };
    std::printf("%-22s %10.3f %10.3f %10.3f %10.3f\n", cfg.name,
                load("openat\n$SCRATCH/ssf"), load("write\n$SCRATCH/ssf"),
                load("openat\n$SCRATCH/fpp"), load("write\n$SCRATCH/fpp"));
  }
  std::cout << "\n(Loads are relative durations within $SCRATCH events; paper Fig. 8b: "
               "openat ssf 0.54, write ssf 0.43, fpp ~0.01.)\n";
  return 0;
}
