// CPLX-STAT — the statistics computation is O(mn) (Sec. V step 4),
// where n is the event count and m the number of distinct activities.
//
// Two sweeps: n at fixed m, and m at fixed n. (The max-concurrency
// sweep adds an O(k log k) term per activity; with n events split
// over m activities that totals O(n log(n/m)), dominated by O(mn)
// for the paper's "m should be small" regime.)
#include <benchmark/benchmark.h>

#include "dfg/stats.hpp"
#include "testdata.hpp"

namespace {

using namespace st;

void BM_Stats_EventSweep(benchmark::State& state) {
  const auto log = bench::synthetic_log(3, 64, static_cast<std::size_t>(state.range(0)) / 64,
                                        /*distinct_paths=*/16);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::IoStatistics::compute(log, f));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetComplexityN(static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_Stats_EventSweep)->Range(1 << 10, 1 << 17)->Complexity(benchmark::oN);

void BM_Stats_ActivitySweep(benchmark::State& state) {
  // m ~ distinct paths (call_last_components keeps paths distinct).
  const auto log =
      bench::synthetic_log(4, 64, 512, static_cast<std::size_t>(state.range(0)));
  const auto f = model::Mapping::call_last_components(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::IoStatistics::compute(log, f));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Stats_ActivitySweep)->Range(4, 1 << 10);

void BM_Timeline(benchmark::State& state) {
  const auto log = bench::synthetic_log(5, 64, static_cast<std::size_t>(state.range(0)) / 64, 4);
  const auto f = model::Mapping::call_top_dirs(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::IoStatistics::timeline(log, f, "read\n/data/dir0"));
  }
}
BENCHMARK(BM_Timeline)->Range(1 << 10, 1 << 15);

}  // namespace

BENCHMARK_MAIN();
