#!/usr/bin/env bash
# Runs the ingestion + pipeline + storage + sharding + query + serve
# benchmarks and writes BENCH_parse.json, BENCH_pipeline.json,
# BENCH_elog.json, BENCH_shard.json, BENCH_query.json and
# BENCH_serve.json at the repo root — the perf trajectory record future
# PRs compare against.
#
#   bench/run_bench.sh [build-dir] [out-dir]
#
# With no build-dir argument the release-native preset is configured
# and built (build-native/, -march=native) so the scan kernels run with
# the widest vector ISA of the machine; an explicit build-dir is used
# as-is and must already contain bench_parse.
#
# BENCH_parse.json layout:
#   {
#     "baseline_seed": <bench/baseline_seed.json — pre-zero-copy numbers>,
#     "speedup_vs_seed": <BM_ReadTraceMixed/131072 bytes/s over baseline>,
#     "event_log_speedup_vs_copying": <arena-interned event construction
#         over the PR 1 per-event string copies, 131072-line corpus>,
#     "mixed_vs_best_either_or": <mixed (file, chunk) work-queue ingest
#         over the better of PR 1's per-file-only / intra-file-only
#         paths on a 1-big+8-small file set>,
#     "scan_kernel_speedup_vs_scalar": <SWAR/SIMD structural scan over
#         the scalar reference loops, 131072-line corpus>,
#     "convert_scaling" / "query_scaling": <items/s at 1/2/4 workers>,
#     "convert_parallel_speedup": <best multi-worker conversion point
#         over the 1-worker point>,
#     "query_parallel_speedup": <best multi-worker Query::apply point
#         over the 1-worker point>,
#     "current": <google-benchmark JSON of bench_parse>
#   }
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"
out_dir="${2:-$repo_root}"

if [[ -z "$build_dir" ]]; then
  build_dir="$repo_root/build-native"
  # --preset resolves relative to the working directory, so build from
  # the repo root regardless of where the script was invoked. Always
  # build: an incremental no-op is cheap, while a stale build-native/
  # would silently benchmark last PR's binaries.
  # Key on the cache, not the directory: an interrupted first configure
  # leaves build-native/ without a usable CMakeCache.txt.
  if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
    (cd "$repo_root" && cmake --preset release-native)
  fi
  (cd "$repo_root" && cmake --build --preset release-native -j "$(nproc)")
fi

if [[ ! -x "$build_dir/bench/bench_parse" ]]; then
  echo "bench_parse not built; run: cmake --preset release-native && cmake --build --preset release-native -j" >&2
  exit 1
fi

mkdir -p "$out_dir"

parse_raw="$(mktemp)"
pipeline_raw="$(mktemp)"
elog_raw="$(mktemp)"
shard_raw="$(mktemp)"
nofault_raw="$(mktemp)"
query_raw="$(mktemp)"
serve_raw="$(mktemp)"
trap 'rm -f "$parse_raw" "$pipeline_raw" "$elog_raw" "$shard_raw" "$nofault_raw" "$query_raw" "$serve_raw"' EXIT

"$build_dir/bench/bench_parse" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  >"$parse_raw"

"$build_dir/bench/bench_pipeline" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$pipeline_raw"

"$build_dir/bench/bench_elog" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$elog_raw"

# ST_ELOG_TOOL lets bench_shard also register the spawned-subprocess
# variant (posix_spawn of the real fold-shard verb).
ST_ELOG_TOOL="$build_dir/examples/elog_tool" \
  "$build_dir/bench/bench_shard" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$shard_raw"

"$build_dir/bench/bench_query" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$query_raw"

# bench_serve is a plain main (latency distribution, not throughput —
# see its header): it prints one JSON record; the wrapper below lifts
# the headline numbers to the top level of BENCH_serve.json.
"$build_dir/bench/bench_serve" \
  --clients=4 --requests=128 --cache-entries=16 \
  >"$serve_raw"

# faultpoint_disabled_overhead: the same BM_RunSharded points from a
# twin build with -DST_DISABLE_FAULT_POINTS=ON (the FAULT_POINT macros
# compile out entirely), so BENCH_shard.json records what the always-on
# registry costs when nothing is armed. Only meaningful when this run
# built build-native itself — an explicit build-dir's flags are unknown
# and the twin would not be apples-to-apples.
echo '{}' >"$nofault_raw"
if [[ "$build_dir" == "$repo_root/build-native" ]]; then
  nofault_dir="$repo_root/build-nofaults"
  cmake -B "$nofault_dir" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=Release -DCMAKE_CXX_FLAGS="-march=native" \
        -DST_DISABLE_FAULT_POINTS=ON >/dev/null
  cmake --build "$nofault_dir" --target bench_shard -j "$(nproc)"
  "$nofault_dir/bench/bench_shard" \
    --benchmark_filter='^BM_RunSharded/' \
    --benchmark_format=json \
    --benchmark_min_time=0.2 \
    >"$nofault_raw"
fi

# BENCH_pipeline.json layout:
#   {
#     "pipeline_overlap_speedup_vs_staged": <best streamed-over-staged
#         trace->EventLog->DFG ratio across worker counts; parity is
#         the ceiling on a 1-CPU box>,
#     "pipeline_overlap_speedup_by_workers": {"1": .., "2": .., "4": ..},
#     "pipeline_scaling": {"staged": {...}, "streamed": {...}}  (items/s),
#     "multi_sink_single_pass_speedup_vs_staged": <best ratio of ONE
#         pipeline::run pass folding DFG + case stats + variants sinks
#         over the staged workflow (streamed ingest barrier, then three
#         separate analytic passes) across worker counts>,
#     "multi_sink_speedup_by_workers": {"1": .., "2": .., "4": ..},
#     "multi_sink_scaling": {"staged": {...}, "single_pass": {...}}  (items/s),
#     "current": <google-benchmark JSON of bench_pipeline>
#   }
python3 - "$pipeline_raw" "$out_dir/BENCH_pipeline.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))

def metric(name, key):
    for bench in current.get("benchmarks", []):
        if bench.get("name") == name and key in bench:
            return bench[key]
    return None

def scaling(prefix):
    points = {}
    for w in (1, 2, 4):
        ips = metric(f"{prefix}/{w}/real_time", "items_per_second")
        if ips is not None:
            points[str(w)] = round(ips)
    return points

def ratios(fast, slow):
    return {w: round(fast[w] / slow[w], 2)
            for w in fast if w in slow and slow[w]}

staged = scaling("BM_PipelineStaged")
streamed = scaling("BM_PipelineStreamed")
by_workers = ratios(streamed, staged)
best = max(by_workers.values()) if by_workers else None

sink_staged = scaling("BM_MultiSinkStaged")
sink_single = scaling("BM_MultiSinkSinglePass")
sink_by_workers = ratios(sink_single, sink_staged)
sink_best = max(sink_by_workers.values()) if sink_by_workers else None

out = {
    "pipeline_overlap_speedup_vs_staged": best,
    "pipeline_overlap_speedup_by_workers": by_workers,
    "pipeline_scaling": {"staged": staged, "streamed": streamed},
    "multi_sink_single_pass_speedup_vs_staged": sink_best,
    "multi_sink_speedup_by_workers": sink_by_workers,
    "multi_sink_scaling": {"staged": sink_staged, "single_pass": sink_single},
    "current": current,
}
json.dump(out, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]} (pipeline_overlap_speedup_vs_staged = {best}x, "
      f"by_workers = {by_workers}, "
      f"multi_sink_single_pass_speedup_vs_staged = {sink_best}x, "
      f"multi_sink_by_workers = {sink_by_workers})")
EOF

python3 - "$parse_raw" "$repo_root/bench/baseline_seed.json" "$out_dir/BENCH_parse.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))

def metric(name, key):
    for bench in current.get("benchmarks", []):
        if bench.get("name") == name and key in bench:
            return bench[key]
    return None

def ratio(num, den):
    if num is None or den is None or den == 0:
        return None
    return round(num / den, 2)

speedup = None
base_bps = baseline["corpus"]["bytes"] / baseline["sequential_read"]["best_seconds"]
mixed_bps = metric("BM_ReadTraceMixed/131072", "bytes_per_second")
if mixed_bps is not None:
    speedup = round(mixed_bps / base_bps, 2)

# Arena-interned event construction vs the PR 1 per-event string copies.
elog_speedup = ratio(metric("BM_EventLogFromRecords/131072", "items_per_second"),
                     metric("BM_EventLogFromRecordsCopying/131072", "items_per_second"))

# Mixed (file, chunk) work queue vs the better PR 1 either/or path.
mixed = metric("BM_MixedFiles_Mixed/real_time", "bytes_per_second")
per_file = metric("BM_MixedFiles_PerFileOnly/real_time", "bytes_per_second")
intra = metric("BM_MixedFiles_IntraFileOnly/real_time", "bytes_per_second")
mixed_vs_best = None
if mixed and per_file and intra:
    mixed_vs_best = round(mixed / max(per_file, intra), 2)

# SWAR/SIMD scan kernels vs the scalar reference loops (this PR's
# acceptance metric: >= 1.3x).
scan_speedup = ratio(metric("BM_ScanKernel/131072", "bytes_per_second"),
                     metric("BM_ScanScalar/131072", "bytes_per_second"))
swar_speedup = ratio(metric("BM_ScanSwar/131072", "bytes_per_second"),
                     metric("BM_ScanScalar/131072", "bytes_per_second"))

# Multi-thread scaling points (1/2/4 workers). On a 1-CPU host the
# multi-worker points record contention, not speedup — the scaling
# dict keeps the raw numbers either way.
def scaling(prefix):
    points = {}
    for w in (1, 2, 4):
        ips = metric(f"{prefix}/{w}/real_time", "items_per_second")
        if ips is not None:
            points[str(w)] = round(ips)
    return points

convert_scaling = scaling("BM_ConvertCasesParallel")
query_scaling = scaling("BM_QueryApplyParallel")

def parallel_speedup(points):
    if "1" not in points:
        return None
    multi = [v for k, v in points.items() if k != "1"]
    if not multi:
        return None
    return round(max(multi) / points["1"], 2)

out = {
    "baseline_seed": baseline,
    "speedup_vs_seed": speedup,
    "event_log_speedup_vs_copying": elog_speedup,
    "mixed_vs_best_either_or": mixed_vs_best,
    "scan_kernel_speedup_vs_scalar": scan_speedup,
    "scan_swar_speedup_vs_scalar": swar_speedup,
    "convert_scaling": convert_scaling,
    "convert_parallel_speedup": parallel_speedup(convert_scaling),
    "query_scaling": query_scaling,
    "query_parallel_speedup": parallel_speedup(query_scaling),
    "current": current,
}
json.dump(out, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} (speedup_vs_seed = {out['speedup_vs_seed']}x, "
      f"event_log_speedup_vs_copying = {out['event_log_speedup_vs_copying']}x, "
      f"mixed_vs_best_either_or = {out['mixed_vs_best_either_or']}x, "
      f"scan_kernel_speedup_vs_scalar = {out['scan_kernel_speedup_vs_scalar']}x, "
      f"convert_parallel_speedup = {out['convert_parallel_speedup']}x, "
      f"query_parallel_speedup = {out['query_parallel_speedup']}x)")
EOF

# BENCH_elog.json layout:
#   {
#     "open_speedup_v2_vs_v1": <open + first case query: mmap'd columnar
#         v2 over the front-to-back v1 chunk parse, same corpus>,
#     "open_speedup_v2_vs_reparse": <same v2 path over re-ingesting the
#         raw strace text (this PR's acceptance metric: >= 10x)>,
#     "open_micros": {"v2": .., "v1": .., "reparse": ..}  (real time),
#     "write_speedup_v2_vs_v1" / "read_speedup_v2_vs_v1": <full-log
#         (de)serialization throughput ratio at the largest size point;
#         read is full materialization, v2's worst case>,
#     "current": <google-benchmark JSON of bench_elog>
#   }
python3 - "$elog_raw" "$out_dir/BENCH_elog.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))

def metric(name, key):
    for bench in current.get("benchmarks", []):
        if bench.get("name") == name and key in bench:
            return bench[key]
    return None

def ratio(num, den):
    if num is None or den is None or den == 0:
        return None
    return round(num / den, 2)

v2 = metric("BM_OpenFirstQueryV2", "real_time")
v1 = metric("BM_OpenFirstQueryV1", "real_time")
reparse = metric("BM_OpenFirstQueryReparse", "real_time")

out = {
    "open_speedup_v2_vs_v1": ratio(v1, v2),
    "open_speedup_v2_vs_reparse": ratio(reparse, v2),
    "open_micros": {"v2": round(v2, 1) if v2 else None,
                    "v1": round(v1, 1) if v1 else None,
                    "reparse": round(reparse, 1) if reparse else None},
    "write_speedup_v2_vs_v1": ratio(metric("BM_ElogWriteV2/65536", "items_per_second"),
                                    metric("BM_ElogWrite/65536", "items_per_second")),
    "read_speedup_v2_vs_v1": ratio(metric("BM_ElogReadV2/65536", "items_per_second"),
                                   metric("BM_ElogRead/65536", "items_per_second")),
    "current": current,
}
json.dump(out, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]} (open_speedup_v2_vs_v1 = {out['open_speedup_v2_vs_v1']}x, "
      f"open_speedup_v2_vs_reparse = {out['open_speedup_v2_vs_reparse']}x, "
      f"open_micros = {out['open_micros']}, "
      f"write_speedup_v2_vs_v1 = {out['write_speedup_v2_vs_v1']}x, "
      f"read_speedup_v2_vs_v1 = {out['read_speedup_v2_vs_v1']}x)")
EOF

# BENCH_shard.json layout:
#   {
#     "sharded_scaling": {"in_process": {"1": .., "2": .., "4": ..},
#                         "spawned": {...}}  (events/s over run_sharded
#         at 1/2/4 shards; in_process still round-trips the codec,
#         spawned adds posix_spawn + blob I/O),
#     "sharded_parallel_speedup": <best multi-shard in-process point
#         over the 1-shard point; parity is the ceiling on a 1-CPU box>,
#     "spawned_overhead_at_1_shard": <in-process over spawned events/s
#         at 1 shard — what the subprocess boundary costs>,
#     "faultpoint_disabled_overhead": <BM_RunSharded events/s with the
#         fault registry compiled in (default build) over the same
#         point from a -DST_DISABLE_FAULT_POINTS=ON twin build; ~1.0
#         means the disabled registry costs nothing measurable>,
#     "faultpoint_overhead_by_shards": {"1": .., "2": .., "4": ..},
#     "current": <google-benchmark JSON of bench_shard>
#   }
python3 - "$shard_raw" "$nofault_raw" "$out_dir/BENCH_shard.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))
nofault = json.load(open(sys.argv[2]))

def metric(name, key, data=None):
    for bench in (current if data is None else data).get("benchmarks", []):
        if bench.get("name") == name and key in bench:
            return bench[key]
    return None

def scaling(prefix, data=None):
    points = {}
    for k in (1, 2, 4):
        ips = metric(f"{prefix}/{k}/real_time", "items_per_second", data)
        if ips is not None:
            points[str(k)] = round(ips)
    return points

in_process = scaling("BM_RunSharded")
spawned = scaling("BM_RunShardedSpawned")
nofault_points = scaling("BM_RunSharded", nofault)

def parallel_speedup(points):
    if "1" not in points:
        return None
    multi = [v for k, v in points.items() if k != "1"]
    if not multi:
        return None
    return round(max(multi) / points["1"], 2)

overhead = None
if "1" in in_process and "1" in spawned and spawned["1"]:
    overhead = round(in_process["1"] / spawned["1"], 2)

fault_by_shards = {k: round(in_process[k] / nofault_points[k], 3)
                   for k in in_process if nofault_points.get(k)}
fault_overhead = fault_by_shards.get("1")

out = {
    "sharded_scaling": {"in_process": in_process, "spawned": spawned},
    "sharded_parallel_speedup": parallel_speedup(in_process),
    "spawned_overhead_at_1_shard": overhead,
    "faultpoint_disabled_overhead": fault_overhead,
    "faultpoint_overhead_by_shards": fault_by_shards,
    "current": current,
}
json.dump(out, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} (sharded_parallel_speedup = "
      f"{out['sharded_parallel_speedup']}x, scaling = {in_process}, "
      f"spawned = {spawned}, "
      f"spawned_overhead_at_1_shard = {out['spawned_overhead_at_1_shard']}x, "
      f"faultpoint_disabled_overhead = {out['faultpoint_disabled_overhead']})")
EOF

# BENCH_query.json layout:
#   {
#     "indexed_speedup_by_selectivity": {"sel0": .., "sel1": ..,
#         "sel50": .., "sel100": ..} — Query::apply over the resident
#         EventLog divided by select_v2 over the mmap'd indexed
#         container, per selectivity tier (sel1 is one case in 128),
#     "indexed_speedup_at_1pct_selectivity": <the sel1 point — this
#         PR's acceptance metric: >= 5x; byte-identity of the two paths
#         is enforced by test_v2_select and the CI serve-mode cmp>,
#     "combined_restriction_speedup": <calls + fp + window at the sel1
#         tier — the interactive narrow-it-down query shape>,
#     "noindex_vs_scan": <select_v2 over an index-free file divided by
#         Query::apply — the column-scan fallback, per tier>,
#     "scan_micros" / "indexed_micros": <real time per tier>,
#     "current": <google-benchmark JSON of bench_query>
#   }
python3 - "$query_raw" "$out_dir/BENCH_query.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))

def metric(name, key):
    for bench in current.get("benchmarks", []):
        if bench.get("name") == name and key in bench:
            return bench[key]
    return None

def ratio(num, den):
    if num is None or den is None or den == 0:
        return None
    return round(num / den, 2)

tiers = ("sel0", "sel1", "sel50", "sel100")
scan = {t: metric(f"BM_QueryScan/{t}", "real_time") for t in tiers}
indexed = {t: metric(f"BM_QueryIndexed/{t}", "real_time") for t in tiers}
speedup = {t: ratio(scan[t], indexed[t]) for t in tiers}

noindex = {t: ratio(scan[t], metric(f"BM_QueryNoIndex/{t}", "real_time"))
           for t in ("sel1", "sel50")}

combined = ratio(metric("BM_QueryScan/sel1_combined", "real_time"),
                 metric("BM_QueryIndexed/sel1_combined", "real_time"))

out = {
    "indexed_speedup_by_selectivity": speedup,
    "indexed_speedup_at_1pct_selectivity": speedup.get("sel1"),
    "combined_restriction_speedup": combined,
    "noindex_vs_scan": noindex,
    "scan_micros": {t: round(v, 1) for t, v in scan.items() if v is not None},
    "indexed_micros": {t: round(v, 1) for t, v in indexed.items() if v is not None},
    "current": current,
}
json.dump(out, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]} (indexed_speedup_at_1pct_selectivity = "
      f"{out['indexed_speedup_at_1pct_selectivity']}x, by_selectivity = {speedup}, "
      f"combined_restriction_speedup = {combined}x, noindex_vs_scan = {noindex})")
EOF

# BENCH_serve.json layout:
#   {
#     "p50_us" / "p99_us": <overall request latency of the mixed
#         query/report/diff/stat workload, 4 clients x 128 requests
#         against one resident Catalog (cache capacity 16 — small
#         enough that eviction happens)>,
#     "report_p50_us": <the heavyweight verb on its own — a cold full
#         HTML report dominates the overall p99>,
#     "report_cold_p50_us" / "report_warm_p50_us": <the same verb split
#         by first-seen vs later-hit: the cold render cost vs the cache
#         hit that replaces it (first-seen approximation — see
#         bench_serve's header)>,
#     "cache_hit_rate": <catalog hits / (hits + misses) at the end of
#         the run; cold misses and eviction refills included>,
#     "requests_per_second": <aggregate across clients>,
#     "current": <bench_serve's full JSON record (per-verb p50/p99,
#         cache counters, corpus size)>
#   }
python3 - "$serve_raw" "$out_dir/BENCH_serve.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))
latency = current.get("latency_us", {})
report_split = latency.get("cold_warm", {}).get("report", {})
out = {
    "p50_us": latency.get("overall", {}).get("p50"),
    "p99_us": latency.get("overall", {}).get("p99"),
    "report_p50_us": latency.get("per_verb", {}).get("report", {}).get("p50"),
    "report_cold_p50_us": report_split.get("cold", {}).get("p50"),
    "report_warm_p50_us": report_split.get("warm", {}).get("p50"),
    "cache_hit_rate": current.get("cache", {}).get("hit_rate"),
    "requests_per_second": current.get("requests_per_second"),
    "current": current,
}
json.dump(out, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]} (p50_us = {out['p50_us']}, p99_us = {out['p99_us']}, "
      f"report_p50_us = {out['report_p50_us']}, "
      f"report_cold_p50_us = {out['report_cold_p50_us']}, "
      f"report_warm_p50_us = {out['report_warm_p50_us']}, "
      f"cache_hit_rate = {out['cache_hit_rate']}, "
      f"requests_per_second = {out['requests_per_second']})")
EOF
