#!/usr/bin/env bash
# Runs the ingestion + pipeline benchmarks and writes BENCH_parse.json
# (and BENCH_pipeline.json) at the repo root — the perf trajectory
# record future PRs compare against.
#
#   bench/run_bench.sh [build-dir] [out-dir]
#
# BENCH_parse.json layout:
#   {
#     "baseline_seed": <bench/baseline_seed.json — pre-zero-copy numbers>,
#     "speedup_vs_seed": <BM_ReadTraceMixed/131072 bytes/s over baseline>,
#     "current": <google-benchmark JSON of bench_parse>
#   }
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

if [[ ! -x "$build_dir/bench/bench_parse" ]]; then
  echo "bench_parse not built; run: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

parse_raw="$(mktemp)"
trap 'rm -f "$parse_raw"' EXIT

"$build_dir/bench/bench_parse" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$parse_raw"

"$build_dir/bench/bench_pipeline" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$out_dir/BENCH_pipeline.json"

python3 - "$parse_raw" "$repo_root/bench/baseline_seed.json" "$out_dir/BENCH_parse.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))

speedup = None
base_bps = baseline["corpus"]["bytes"] / baseline["sequential_read"]["best_seconds"]
for bench in current.get("benchmarks", []):
    if bench.get("name") == "BM_ReadTraceMixed/131072" and "bytes_per_second" in bench:
        speedup = round(bench["bytes_per_second"] / base_bps, 2)

out = {
    "baseline_seed": baseline,
    "speedup_vs_seed": speedup,
    "current": current,
}
json.dump(out, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} (speedup_vs_seed = {speedup}x)")
EOF
