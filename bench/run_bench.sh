#!/usr/bin/env bash
# Runs the ingestion + pipeline benchmarks and writes BENCH_parse.json
# (and BENCH_pipeline.json) at the repo root — the perf trajectory
# record future PRs compare against.
#
#   bench/run_bench.sh [build-dir] [out-dir]
#
# BENCH_parse.json layout:
#   {
#     "baseline_seed": <bench/baseline_seed.json — pre-zero-copy numbers>,
#     "speedup_vs_seed": <BM_ReadTraceMixed/131072 bytes/s over baseline>,
#     "event_log_speedup_vs_copying": <arena-interned event construction
#         over the PR 1 per-event string copies, 131072-line corpus>,
#     "mixed_vs_best_either_or": <mixed (file, chunk) work-queue ingest
#         over the better of PR 1's per-file-only / intra-file-only
#         paths on a 1-big+8-small file set>,
#     "current": <google-benchmark JSON of bench_parse>
#   }
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

if [[ ! -x "$build_dir/bench/bench_parse" ]]; then
  echo "bench_parse not built; run: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

parse_raw="$(mktemp)"
trap 'rm -f "$parse_raw"' EXIT

"$build_dir/bench/bench_parse" \
  --benchmark_format=json \
  --benchmark_min_time=0.5 \
  >"$parse_raw"

"$build_dir/bench/bench_pipeline" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  >"$out_dir/BENCH_pipeline.json"

python3 - "$parse_raw" "$repo_root/bench/baseline_seed.json" "$out_dir/BENCH_parse.json" <<'EOF'
import json
import sys

current = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))

def metric(name, key):
    for bench in current.get("benchmarks", []):
        if bench.get("name") == name and key in bench:
            return bench[key]
    return None

speedup = None
base_bps = baseline["corpus"]["bytes"] / baseline["sequential_read"]["best_seconds"]
mixed_bps = metric("BM_ReadTraceMixed/131072", "bytes_per_second")
if mixed_bps is not None:
    speedup = round(mixed_bps / base_bps, 2)

# Arena-interned event construction vs the PR 1 per-event string copies.
elog_speedup = None
arena_ips = metric("BM_EventLogFromRecords/131072", "items_per_second")
copy_ips = metric("BM_EventLogFromRecordsCopying/131072", "items_per_second")
if arena_ips and copy_ips:
    elog_speedup = round(arena_ips / copy_ips, 2)

# Mixed (file, chunk) work queue vs the better PR 1 either/or path.
mixed_vs_best = None
mixed = metric("BM_MixedFiles_Mixed/real_time", "bytes_per_second")
per_file = metric("BM_MixedFiles_PerFileOnly/real_time", "bytes_per_second")
intra = metric("BM_MixedFiles_IntraFileOnly/real_time", "bytes_per_second")
if mixed and per_file and intra:
    mixed_vs_best = round(mixed / max(per_file, intra), 2)

out = {
    "baseline_seed": baseline,
    "speedup_vs_seed": speedup,
    "event_log_speedup_vs_copying": elog_speedup,
    "mixed_vs_best_either_or": mixed_vs_best,
    "current": current,
}
json.dump(out, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} (speedup_vs_seed = {speedup}x, "
      f"event_log_speedup_vs_copying = {elog_speedup}x, "
      f"mixed_vs_best_either_or = {mixed_vs_best}x)")
EOF
