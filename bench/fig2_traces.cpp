// FIG2 — regenerates the strace traces of Fig. 2.
//
// Prints the `ls` trace of rid 9042 (Fig. 2a) and the `ls -l` trace of
// rid 9157 (Fig. 2b) in strace's own output format, then demonstrates
// the simultaneous-multiprocessing case of Fig. 2c: an unfinished/
// resumed pair and its merge.
#include <iostream>

#include "iosim/commands.hpp"
#include "strace/parser.hpp"
#include "strace/writer.hpp"

int main() {
  using namespace st;

  const auto ca = iosim::make_ls_traces();
  const auto cb = iosim::make_ls_l_traces();

  std::cout << "=== Fig. 2a: trace file a_host1_9042.st (ls) ===\n"
            << strace::format_trace(ca.traces.front().records) << "\n";
  std::cout << "=== Fig. 2b: trace file b_host1_9157.st (ls -l) ===\n"
            << strace::format_trace(cb.traces.front().records) << "\n";

  std::cout << "=== Fig. 2c: unfinished/resumed records and their merge ===\n";
  const std::string unfinished =
      "77423  16:56:40.452431 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, "
      "<unfinished ...>";
  const std::string resumed =
      "77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>";
  std::cout << unfinished << "\n" << resumed << "\n";

  strace::ResumeMerger merger;
  (void)merger.feed(*strace::parse_line(unfinished));
  const auto merged = merger.feed(*strace::parse_line(resumed));
  std::cout << "merged -> " << strace::format_record(*merged) << "\n";
  std::cout << "         (start kept from the unfinished record, duration/"
               "transfer size from the resumed record)\n";
  return 0;
}
