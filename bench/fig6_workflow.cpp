// FIG6 — the st_inspector analysis workflow, step by step.
//
// The paper's Fig. 6 is a Python listing (steps 0-5 of the pipeline);
// this binary executes the equivalent C++ API calls and prints what
// each step produces, on the ls / ls -l event log:
//
//   0) event-log container          -> elog round trip
//   1) apply_fp_filter('/usr/lib')  -> EventLog::filter_fp / Query
//   2) mapping function f           -> Mapping (custom lambda, as in the listing)
//   3) DFG construction             -> dfg::build_serial
//   4) I/O statistics               -> IoStatistics::compute
//   5a) statistics-based coloring   -> StatisticsColoring + render
//   5b) partition-based coloring    -> PartitionEL + PartitionColoring
#include <iostream>
#include <sstream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "elog/store.hpp"
#include "iosim/commands.hpp"
#include "support/strings.hpp"

int main() {
  using namespace st;
  // 0) The HDF5-like event-log container.
  const auto full_log = model::EventLog::merge(iosim::make_ls_traces().to_event_log(),
                                               iosim::make_ls_l_traces().to_event_log());
  std::stringstream container;
  elog::write_event_log(container, full_log);
  auto event_log = elog::read_event_log(container);
  std::cout << "0) event log: " << event_log.case_count() << " cases, "
            << event_log.total_events() << " events ("
            << container.str().size() << " bytes in the container)\n";

  // 1) Filter the event log.
  event_log = event_log.filter_fp("/usr/lib");
  std::cout << "1) after apply_fp_filter('/usr/lib'): " << event_log.total_events()
            << " events\n";

  // 2) The mapping function of the listing: truncate the path to the
  //    top two directories and prepend the call name.
  const auto f = model::Mapping::custom("fig6", [](const model::Event& e) {
    return std::optional<model::Activity>(std::string(e.call) + "\n" + top_dirs(e.fp, 2));
  });
  std::cout << "2) mapping: " << f.name() << "\n";

  // 3) Construct the DFG.
  const auto dfg_graph = dfg::build_serial(event_log, f);
  std::cout << "3) DFG: " << dfg_graph.activities().size() << " activities, "
            << dfg_graph.edges().size() << " edges\n";

  // 4) Compute I/O statistics.
  const auto stats = dfg::IoStatistics::compute(event_log, f);
  std::cout << "4) statistics over " << stats.per_activity().size()
            << " activities, total I/O time " << stats.total_duration() << " us\n";

  // 5a) Statistics-based coloring.
  const dfg::StatisticsColoring blue(stats);
  std::cout << "5a) statistics-colored DFG:\n"
            << dfg::render_ascii(dfg_graph, &stats, &blue);

  // 5b) Partition-based coloring (ls vs ls -l).
  const auto [green_el, red_el] =
      event_log.partition([](const model::Case& c) { return c.id().cid == "a"; });
  const dfg::PartitionColoring partition(dfg::build_serial(green_el, f),
                                         dfg::build_serial(red_el, f));
  std::cout << "5b) partition-colored DFG:\n"
            << dfg::render_ascii(dfg_graph, &stats, &partition);
  return 0;
}
