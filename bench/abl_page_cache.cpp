// ABL-CACHE — why the paper runs IOR with -C.
//
// "-C forces the MPI ranks to read the data written by the neighboring
// node (this is done to avoid reading the data stored in the DRAM)".
// This ablation runs the SSF workload with and without -C, and with
// the page-cache model disabled, and prints the measured read data
// rates: without -C the reads hit the writer's page cache and report
// DRAM bandwidth, inflating the apparent storage performance.
#include <cstdio>

#include "dfg/stats.hpp"
#include "iosim/campaign.hpp"

int main() {
  using namespace st;
  iosim::CampaignScale scale;
  scale.num_ranks = 32;
  scale.ranks_per_node = 16;

  struct Config {
    const char* name;
    bool reorder;      // -C
    bool cache_model;  // page-cache modeling on/off
  };
  const Config configs[] = {
      {"-C, cache modeled   ", true, true},
      {"no -C, cache modeled", false, true},
      {"-C, cache disabled  ", true, false},
      {"no -C, cache off    ", false, false},
  };

  std::printf("%-22s %16s %16s\n", "config", "read rate MB/s", "read load");
  for (const auto& cfg : configs) {
    auto options = iosim::make_ssf_options(scale);
    options.reorder_tasks = cfg.reorder;
    iosim::CostModel model;
    if (!cfg.cache_model) model.cache_read_bw_mbps = model.read_bw_mbps;
    const auto log = iosim::run_ior(options, model).to_event_log();
    const auto f = model::Mapping::call_site(model::SitePathMap::juwels_like(), 1);
    const auto stats = dfg::IoStatistics::compute(log, f);
    const auto* read = stats.find("read\n$SCRATCH/ssf");
    std::printf("%-22s %16.2f %16.3f\n", cfg.name,
                read != nullptr ? read->mean_rate / 1e6 : 0.0,
                read != nullptr ? read->rel_dur : 0.0);
  }
  std::printf(
      "\nWithout -C (same-rank read-back) the measured read rate is the DRAM\n"
      "page-cache rate, not the storage rate — the distortion the paper's\n"
      "-C flag exists to prevent.\n");
  return 0;
}
