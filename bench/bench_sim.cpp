// OVH-SIM — throughput of the simulation substrate itself: raw DES
// event processing, resource queueing, and full IOR runs as a function
// of rank count (the cost of regenerating the paper's experiments).
#include <benchmark/benchmark.h>

#include "des/resource.hpp"
#include "des/simulator.hpp"
#include "iosim/ior.hpp"

namespace {

using namespace st;

void BM_DesDelayEvents(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    auto proc = [](des::Simulator& s, int steps) -> des::Proc<> {
      for (int i = 0; i < steps; ++i) co_await s.delay(1);
    };
    for (int p = 0; p < 16; ++p) sim.spawn(proc(sim, n / 16));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DesDelayEvents)->Range(1 << 10, 1 << 16);

void BM_DesResourceChurn(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    des::Resource res(sim, 4);
    auto proc = [](des::Simulator& s, des::Resource& r, int rounds) -> des::Proc<> {
      for (int i = 0; i < rounds; ++i) {
        co_await r.acquire();
        co_await s.delay(3);
        r.release();
      }
    };
    for (int p = 0; p < 32; ++p) sim.spawn(proc(sim, res, n / 32));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DesResourceChurn)->Range(1 << 10, 1 << 15);

/// Full simulated IOR run (SSF, POSIX) scaling with the rank count;
/// items processed = syscall records generated.
void BM_IorRun(benchmark::State& state) {
  iosim::IorOptions opt;
  opt.num_ranks = static_cast<int>(state.range(0));
  opt.ranks_per_node = std::max(1, opt.num_ranks / 2);
  opt.transfer_size = 1 << 18;
  opt.block_size = 1 << 20;
  opt.segments = 2;
  opt.test_file = "/p/scratch/ssf/test";
  std::size_t records = 0;
  for (auto _ : state) {
    const auto traces = iosim::run_ior(opt);
    records = 0;
    for (const auto& t : traces.traces) records += t.records.size();
    benchmark::DoNotOptimize(traces);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_IorRun)->Arg(4)->Arg(16)->Arg(48)->Arg(96);

/// SMT mode: cost of the extra interleaving machinery.
void BM_IorRunSmt(benchmark::State& state) {
  iosim::IorOptions opt;
  opt.num_ranks = 8;
  opt.ranks_per_node = 4;
  opt.threads_per_rank = static_cast<int>(state.range(0));
  opt.transfer_size = 1 << 18;
  opt.block_size = 1 << 20;
  opt.segments = 2;
  opt.test_file = "/p/scratch/ssf/test";
  for (auto _ : state) {
    benchmark::DoNotOptimize(iosim::run_ior(opt));
  }
}
BENCHMARK(BM_IorRunSmt)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
