// FIG7 — the IOR experiment configuration.
//
// Prints the file layout of Fig. 7a (segments x blocks x transfers)
// and the exact command lines of Fig. 7b for the SSF and FPP runs.
#include <iostream>

#include "iosim/campaign.hpp"

int main() {
  using namespace st;
  iosim::CampaignScale scale;  // the paper's scale: 96 ranks, -t 1m -b 16m -s 3

  const auto ssf = iosim::make_ssf_options(scale);
  std::cout << "=== Fig. 7a: the format of the IOR file ===\n";
  std::cout << "segments: " << ssf.segments << ", block: " << (ssf.block_size >> 20)
            << " MiB, transfer: " << (ssf.transfer_size >> 20) << " MiB ("
            << ssf.transfers_per_block() << " transfers per block)\n";
  std::cout << "SSF file layout (one shared file):\n";
  for (int seg = 0; seg < ssf.segments; ++seg) {
    std::cout << "  segment " << seg + 1 << ": ";
    std::cout << "[rank0: " << ssf.transfers_per_block() << " x "
              << (ssf.transfer_size >> 20) << "m][rank1: ...]...[rank" << ssf.num_ranks - 1
              << "]\n";
  }
  std::cout << "FPP file layout: test.00000000 ... test."
            << ssf.num_ranks - 1 << " (each rank its own file)\n\n";

  std::cout << "=== Fig. 7b: IOR commands ===\n";
  std::cout << "#Single Shared File\n" << iosim::make_ssf_options(scale).command_line() << "\n";
  std::cout << "#One File per Process\n" << iosim::make_fpp_options(scale).command_line()
            << "\n";
  return 0;
}
