// Shard-count scaling of pipeline::run_sharded (ISSUE 7): the same
// corpus folded at 1, 2 and 4 shards, in-process (always) and through
// spawned `elog_tool fold-shard` subprocesses (when ST_ELOG_TOOL names
// the built binary — bench/run_bench.sh exports it). Every variant
// produces bit-identical analytics; the benchmark measures what the
// shard split buys (or costs: codec + subprocess overhead) on top of
// that guarantee. Feeds BENCH_shard.json.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "pipeline/shard.hpp"
#include "support/timeparse.hpp"

namespace {

using namespace st;

/// On-disk strace corpus, same mixed-parallelism shape as
/// bench_pipeline's: one big file plus a swarm of small ones, written
/// once and removed at exit.
class ShardCorpus {
 public:
  static const std::vector<std::string>& paths() {
    static ShardCorpus corpus;
    return corpus.paths_;
  }

 private:
  ShardCorpus() {
    namespace fs = std::filesystem;
    std::random_device rd;
    dir_ = fs::temp_directory_path() /
           ("st_bench_shard_" + std::to_string(rd()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    paths_.push_back(write("big_nodeA_9001.st", make_trace(20000, 7)));
    for (int i = 0; i < 8; ++i) {
      paths_.push_back(write("s" + std::to_string(i) + "_nodeB_" + std::to_string(9100 + i) +
                                 ".st",
                             make_trace(1500, static_cast<std::uint64_t>(100 + i))));
    }
  }
  ~ShardCorpus() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  static std::string make_trace(std::size_t lines, std::uint64_t pid) {
    std::string text;
    Micros t = 36000000000;  // 10:00:00
    const std::string p = std::to_string(pid);
    for (std::size_t i = 0; i < lines; ++i) {
      t += 100;
      switch (i % 4) {
        case 0:
          text += p + "  " + format_time_of_day(t) +
                  " read(3</p/data/f" + std::to_string(i % 16) +
                  ">, \"\"..., 65536) = 65536 <0.000040>\n";
          break;
        case 1:
          text += p + "  " + format_time_of_day(t) +
                  " openat(AT_FDCWD, \"/p/scratch/ssf/t" + std::to_string(i % 8) +
                  "\", O_RDWR|O_CREAT, 0644) = 5 <0.000150>\n";
          break;
        case 2:
          text += p + "  " + format_time_of_day(t) +
                  " pwrite64(5</p/scratch/ssf/t" + std::to_string(i % 8) +
                  ">, \"\"..., 1048576, 33554432) = 1048576 <0.000294>\n";
          break;
        default:
          text += p + "  " + format_time_of_day(t) +
                  " lseek(5</p/scratch/ssf/t" + std::to_string(i % 8) +
                  ">, 0, SEEK_SET) = 0 <0.000002>\n";
          break;
      }
    }
    return text;
  }

  std::string write(const std::string& name, const std::string& text) {
    const auto p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
    return p.string();
  }

  std::filesystem::path dir_;
  std::vector<std::string> paths_;
};

pipeline::ShardOptions shard_options(std::size_t shards, const char* exe) {
  pipeline::ShardOptions opts;
  opts.shards = shards;
  opts.mapping = "top2";
  // One worker per shard pool: the measured scaling is the shard
  // split's, not the inner pool's.
  opts.worker_threads = 1;
  if (exe != nullptr) opts.fold_shard_exe = exe;
  return opts;
}

void run_sharded_loop(benchmark::State& state, const char* exe) {
  const auto& paths = ShardCorpus::paths();
  const auto opts = shard_options(static_cast<std::size_t>(state.range(0)), exe);
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto analytics = pipeline::run_sharded(paths, opts);
    events += analytics.total_events;
    benchmark::DoNotOptimize(analytics);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

/// Every shard folds in-process (still through the codec — encode +
/// decode stay on the measured path).
void BM_RunSharded(benchmark::State& state) { run_sharded_loop(state, nullptr); }

/// Every shard is a posix_spawned `elog_tool fold-shard` subprocess;
/// registered only when ST_ELOG_TOOL is set.
void BM_RunShardedSpawned(benchmark::State& state) {
  run_sharded_loop(state, std::getenv("ST_ELOG_TOOL"));
}

void register_benchmarks() {
  auto* in_process = benchmark::RegisterBenchmark("BM_RunSharded", BM_RunSharded);
  in_process->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
  if (const char* exe = std::getenv("ST_ELOG_TOOL"); exe != nullptr && *exe != '\0') {
    auto* spawned =
        benchmark::RegisterBenchmark("BM_RunShardedSpawned", BM_RunShardedSpawned);
    spawned->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
