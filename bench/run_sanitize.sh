#!/usr/bin/env bash
# Sibling of run_bench.sh: builds the ASan/UBSan preset and runs the
# whole ctest suite under it. The zero-copy ingestion architecture
# (TraceBuffer/arena-backed string_views in RawRecord and Event) makes
# lifetime mistakes silent in a normal build — this job turns every
# dangling view into a hard failure.
#
#   bench/run_sanitize.sh [build-dir]
#
# Requires a compiler with -fsanitize=address,undefined (gcc/clang).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-sanitize}"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$build_dir" -j "$(nproc)"

# halt_on_error keeps the first report readable; detect_leaks stays on
# deliberately — the arenas are owned, not leaked, and the suite must
# prove it.
ASAN_OPTIONS="halt_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "sanitizer suite passed"
