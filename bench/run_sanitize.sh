#!/usr/bin/env bash
# Sibling of run_bench.sh: builds the ASan/UBSan preset and runs the
# whole ctest suite under it. The zero-copy ingestion architecture
# (TraceBuffer/arena-backed string_views in RawRecord and Event) makes
# lifetime mistakes silent in a normal build — this job turns every
# dangling view into a hard failure. The elog v2 mmap reader
# (test_elog_v2) rides along: its byte-assembly load_u32/u64/i64
# decoding, wrap-around delta accumulation and pool-backed views must
# stay free of misaligned loads and signed-overflow UB even on the
# corruption-sweep inputs.
#
#   bench/run_sanitize.sh [--kernels-scalar] [build-dir]
#
# --kernels-scalar forces the scan layer onto the scalar fallback
# (ST_SCAN_KERNELS=scalar) for the whole suite, so the reference loops
# get the same sanitized coverage as the SWAR/SIMD kernels that
# normally run.
#
# Requires a compiler with -fsanitize=address,undefined (gcc/clang).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

kernels_scalar=0
build_dir=""
for arg in "$@"; do
  case "$arg" in
    --kernels-scalar) kernels_scalar=1 ;;
    --*) echo "unknown option: $arg" >&2; exit 2 ;;
    *) build_dir="$arg" ;;
  esac
done
build_dir="${build_dir:-$repo_root/build-sanitize}"

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$build_dir" -j "$(nproc)"

if [[ "$kernels_scalar" -eq 1 ]]; then
  export ST_SCAN_KERNELS=scalar
  echo "scan kernels forced to scalar fallback (ST_SCAN_KERNELS=scalar)"
fi

# halt_on_error keeps the first report readable; detect_leaks stays on
# deliberately — the arenas are owned, not leaked, and the suite must
# prove it.
ASAN_OPTIONS="halt_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

if [[ "$kernels_scalar" -eq 1 ]]; then
  echo "sanitizer suite passed (scalar kernels)"
else
  echo "sanitizer suite passed"
fi
