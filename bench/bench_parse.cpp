// OVH-PARSE — strace parsing overhead (Sec. V "overheads").
//
// Measures line-level parse throughput, whole-trace reading with
// unfinished/resumed merging, the chunked parallel reader, and the
// trace-writer round trip. The read path should scale linearly in the
// line count.
//
// BM_ReadTraceMixed at range 1<<17 (131072 lines, ~10 MB) is the
// acceptance metric of the zero-copy ingestion PR: bytes_per_second
// must stay >= 2x the pre-change sequential baseline recorded in
// bench/baseline_seed.json (see bench/run_bench.sh).
#include <benchmark/benchmark.h>

#include "parallel/thread_pool.hpp"
#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"

namespace {

using namespace st;

const std::string kReadLine =
    "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = "
    "832 <0.000203>";
const std::string kOpenatLine =
    "42  10:00:00.000000 openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
    "<0.000150>";

void BM_ParseLine_Read(benchmark::State& state) {
  strace::StringArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::parse_line(kReadLine, arena));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseLine_Read);

void BM_ParseLine_Openat(benchmark::State& state) {
  strace::StringArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::parse_line(kOpenatLine, arena));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseLine_Openat);

std::string make_trace_text(std::size_t lines, bool with_resume_pairs) {
  std::string text;
  text.reserve(lines * 100);
  for (std::size_t i = 0; i < lines; ++i) {
    const Micros t = static_cast<Micros>(i * 100);
    if (with_resume_pairs && i % 2 == 0) {
      text += "7  " + format_time_of_day(t) + " read(3</p/f>, <unfinished ...>\n";
    } else if (with_resume_pairs) {
      text += "7  " + format_time_of_day(t) + " <... read resumed> ..., 512) = 512 <0.000040>\n";
    } else {
      text += "7  " + format_time_of_day(t) + " read(3</p/f>, ..., 512) = 512 <0.000040>\n";
    }
  }
  return text;
}

/// Production-shaped mix: reads, openat with a quoted path, pwrite64
/// with an offset, and cross-line unfinished/resumed pairs. The same
/// shape as the recorded pre-change baseline (bench/baseline_seed.json).
std::string make_mixed_trace(std::size_t lines) {
  std::string text;
  text.reserve(lines * 100);
  for (std::size_t i = 0; i < lines; ++i) {
    const Micros t = static_cast<Micros>(i * 100);
    switch (i % 5) {
      case 0:
        text += "7  " + format_time_of_day(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += "8  " + format_time_of_day(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 <0.000150>\n";
        break;
      case 2:
        text += "7  " + format_time_of_day(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 <0.000294>\n";
        break;
      case 3:
        text += "9  " + format_time_of_day(t) + " read(3</p/data/f>, <unfinished ...>\n";
        break;
      default:
        text += "9  " + format_time_of_day(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

/// O(n) whole-trace read; the n sweep verifies linear scaling.
void BM_ReadTraceText(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_trace_text(n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::read_trace_text(text));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReadTraceText)->Range(1 << 8, 1 << 17)->Complexity(benchmark::oN);

void BM_ReadTraceText_WithResumeMerging(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_trace_text(n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::read_trace_text(text));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadTraceText_WithResumeMerging)->Range(1 << 8, 1 << 14);

/// Acceptance metric: whole-trace sequential read on the mixed corpus
/// (>= 100k lines at the top of the range), zero-copy from a
/// pre-loaded TraceBuffer exactly like read_trace_file.
void BM_ReadTraceMixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  for (auto _ : state) {
    // A fresh buffer per iteration, built outside the timed region:
    // parsing interns into the buffer's arena, so reusing one buffer
    // would grow its arena monotonically across iterations.
    state.PauseTiming();
    auto buffer = std::make_shared<strace::TraceBuffer>(text);
    state.ResumeTiming();
    benchmark::DoNotOptimize(strace::read_trace_buffer(std::move(buffer)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadTraceMixed)->Range(1 << 14, 1 << 17);

/// The chunked parallel reader on the same corpus (identical output).
void BM_ReadTraceParallelMixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  ThreadPool pool(0);  // hardware concurrency, reused across iterations
  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  opts.min_chunk_bytes = 1 << 18;
  for (auto _ : state) {
    state.PauseTiming();
    auto buffer = std::make_shared<strace::TraceBuffer>(text);
    state.ResumeTiming();
    benchmark::DoNotOptimize(strace::read_trace_parallel(std::move(buffer), opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadTraceParallelMixed)->Range(1 << 14, 1 << 17);

void BM_WriteTrace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto parsed = strace::read_trace_text(make_trace_text(n, false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::format_trace(parsed.records));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WriteTrace)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
