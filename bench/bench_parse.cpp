// OVH-PARSE — strace parsing overhead (Sec. V "overheads").
//
// Measures line-level parse throughput, whole-trace reading with
// unfinished/resumed merging, the chunked parallel reader, and the
// trace-writer round trip. The read path should scale linearly in the
// line count.
//
// BM_ReadTraceMixed at range 1<<17 (131072 lines, ~10 MB) is the
// acceptance metric of the zero-copy ingestion PR: bytes_per_second
// must stay >= 2x the pre-change sequential baseline recorded in
// bench/baseline_seed.json (see bench/run_bench.sh).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "model/from_strace.hpp"
#include "model/query.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"
#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "strace/scan.hpp"
#include "strace/scan_kernels.hpp"
#include "strace/writer.hpp"

namespace {

using namespace st;

const std::string kReadLine =
    "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = "
    "832 <0.000203>";
const std::string kOpenatLine =
    "42  10:00:00.000000 openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
    "<0.000150>";

void BM_ParseLine_Read(benchmark::State& state) {
  strace::StringArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::parse_line(kReadLine, arena));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseLine_Read);

void BM_ParseLine_Openat(benchmark::State& state) {
  strace::StringArena arena;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::parse_line(kOpenatLine, arena));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseLine_Openat);

std::string make_trace_text(std::size_t lines, bool with_resume_pairs) {
  std::string text;
  text.reserve(lines * 100);
  for (std::size_t i = 0; i < lines; ++i) {
    const Micros t = static_cast<Micros>(i * 100);
    if (with_resume_pairs && i % 2 == 0) {
      text += "7  " + format_time_of_day(t) + " read(3</p/f>, <unfinished ...>\n";
    } else if (with_resume_pairs) {
      text += "7  " + format_time_of_day(t) + " <... read resumed> ..., 512) = 512 <0.000040>\n";
    } else {
      text += "7  " + format_time_of_day(t) + " read(3</p/f>, ..., 512) = 512 <0.000040>\n";
    }
  }
  return text;
}

/// Production-shaped mix: reads, openat with a quoted path, pwrite64
/// with an offset, and cross-line unfinished/resumed pairs. The same
/// shape as the recorded pre-change baseline (bench/baseline_seed.json).
std::string make_mixed_trace(std::size_t lines) {
  std::string text;
  text.reserve(lines * 100);
  for (std::size_t i = 0; i < lines; ++i) {
    const Micros t = static_cast<Micros>(i * 100);
    switch (i % 5) {
      case 0:
        text += "7  " + format_time_of_day(t) + " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += "8  " + format_time_of_day(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 <0.000150>\n";
        break;
      case 2:
        text += "7  " + format_time_of_day(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 <0.000294>\n";
        break;
      case 3:
        text += "9  " + format_time_of_day(t) + " read(3</p/data/f>, <unfinished ...>\n";
        break;
      default:
        text += "9  " + format_time_of_day(t) + " <... read resumed> \"\"..., 405) = 404 <0.000223>\n";
        break;
    }
  }
  return text;
}

/// O(n) whole-trace read; the n sweep verifies linear scaling.
void BM_ReadTraceText(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_trace_text(n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::read_trace_text(text));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReadTraceText)->Range(1 << 8, 1 << 17)->Complexity(benchmark::oN);

void BM_ReadTraceText_WithResumeMerging(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_trace_text(n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::read_trace_text(text));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadTraceText_WithResumeMerging)->Range(1 << 8, 1 << 14);

/// Acceptance metric: whole-trace sequential read on the mixed corpus
/// (>= 100k lines at the top of the range), zero-copy from a
/// pre-loaded TraceBuffer exactly like read_trace_file.
void BM_ReadTraceMixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  for (auto _ : state) {
    // A fresh buffer per iteration, built outside the timed region:
    // parsing interns into the buffer's arena, so reusing one buffer
    // would grow its arena monotonically across iterations.
    state.PauseTiming();
    auto buffer = std::make_shared<strace::TraceBuffer>(text);
    state.ResumeTiming();
    benchmark::DoNotOptimize(strace::read_trace_buffer(std::move(buffer)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadTraceMixed)->Range(1 << 14, 1 << 17);

/// The chunked parallel reader on the same corpus (identical output).
void BM_ReadTraceParallelMixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  ThreadPool pool(0);  // hardware concurrency, reused across iterations
  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  opts.min_chunk_bytes = 1 << 18;
  for (auto _ : state) {
    state.PauseTiming();
    auto buffer = std::make_shared<strace::TraceBuffer>(text);
    state.ResumeTiming();
    benchmark::DoNotOptimize(strace::read_trace_parallel(std::move(buffer), opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadTraceParallelMixed)->Range(1 << 14, 1 << 17);

// ---- scan kernels ------------------------------------------------------

/// The structural scan work of one pass over the corpus: split lines,
/// locate the call's argument list, match its parentheses and split
/// the arguments — exactly what the reader + parser ask of the scan
/// layer, without record assembly. `scalar` selects the pre-kernel
/// reference loops; otherwise the active kernel mode runs.
std::size_t scan_corpus(std::string_view text, bool scalar,
                        std::vector<std::string_view>& argv) {
  namespace kn = strace::kernels;
  std::size_t fields = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = scalar ? kn::find_byte_scalar(text, start, '\n')
                                  : kn::find_byte(text, start, '\n');
    const std::size_t stop = nl == kn::npos ? text.size() : nl;
    const std::string_view line = text.substr(start, stop - start);
    const std::size_t open =
        scalar ? kn::find_byte_scalar(line, 0, '(') : kn::find_byte(line, 0, '(');
    if (open != kn::npos) {
      const auto close = scalar ? strace::find_matching_paren_scalar(line, open)
                                : strace::find_matching_paren(line, open);
      if (close) {
        const std::string_view args = line.substr(open + 1, *close - open - 1);
        if (scalar) {
          strace::split_args_into_scalar(args, argv);
        } else {
          strace::split_args_into(args, argv);
        }
        fields += argv.size();
      }
    }
    if (nl == kn::npos) break;
    start = nl + 1;
  }
  return fields;
}

/// Acceptance metric of the kernel PR: bytes/s of the kernel-backed
/// scan over the scalar reference (scan_kernel_speedup_vs_scalar in
/// BENCH_parse.json must be >= 1.3x).
void BM_ScanKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  strace::kernels::set_scan_kernel_mode(strace::kernels::ScanKernelMode::Simd);
  std::vector<std::string_view> argv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_corpus(text, /*scalar=*/false, argv));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
  state.SetLabel(std::string(strace::kernels::scan_kernel_backend()));
}
BENCHMARK(BM_ScanKernel)->Arg(1 << 17);

void BM_ScanScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  std::vector<std::string_view> argv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_corpus(text, /*scalar=*/true, argv));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ScanScalar)->Arg(1 << 17);

/// The portable SWAR word path, pinned regardless of compiled-in SIMD,
/// so the trajectory records what non-x86/ARM targets would see.
void BM_ScanSwar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_mixed_trace(n);
  strace::kernels::set_scan_kernel_mode(strace::kernels::ScanKernelMode::Swar);
  std::vector<std::string_view> argv;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan_corpus(text, /*scalar=*/false, argv));
  }
  strace::kernels::set_scan_kernel_mode(strace::kernels::ScanKernelMode::Simd);
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ScanSwar)->Arg(1 << 17);

// ---- event-log construction (model layer) ------------------------------

/// Acceptance metric of the arena-interning PR: converting parsed
/// records into model Events. Events hold string_views interned
/// per-case, so this is a flat copy of POD + views.
void BM_EventLogFromRecords(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto parsed = strace::read_trace_text(make_mixed_trace(n));
  const strace::TraceFileId id{"bench", "node1", 9001};
  for (auto _ : state) {
    strace::StringArena arena;
    benchmark::DoNotOptimize(model::case_from_records(id, parsed.records, arena));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(parsed.records.size()));
}
BENCHMARK(BM_EventLogFromRecords)->Range(1 << 14, 1 << 17);

/// The PR 1 behaviour, replicated for the speedup record: four owned
/// heap strings copied per event (cid/host/call/fp).
void BM_EventLogFromRecordsCopying(benchmark::State& state) {
  struct OwnedEvent {
    std::string cid;
    std::string host;
    std::uint64_t rid = 0;
    std::uint64_t pid = 0;
    std::string call;
    Micros start = 0;
    Micros dur = 0;
    std::string fp;
    std::int64_t size = -1;
  };
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto parsed = strace::read_trace_text(make_mixed_trace(n));
  const strace::TraceFileId id{"bench", "node1", 9001};
  for (auto _ : state) {
    std::vector<OwnedEvent> events;
    events.reserve(parsed.records.size());
    for (const auto& rec : parsed.records) {
      if (rec.kind != strace::RecordKind::Complete) continue;
      OwnedEvent e;
      e.cid = id.cid;
      e.host = id.host;
      e.rid = id.rid;
      e.pid = rec.pid;
      e.call = rec.call;
      e.start = rec.timestamp;
      e.dur = rec.duration.value_or(0);
      e.fp = rec.path;
      if (rec.is_data_transfer() && rec.retval && *rec.retval >= 0) e.size = *rec.retval;
      events.push_back(std::move(e));
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const OwnedEvent& a, const OwnedEvent& b) { return a.start < b.start; });
    benchmark::DoNotOptimize(events);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(parsed.records.size()));
}
BENCHMARK(BM_EventLogFromRecordsCopying)->Range(1 << 14, 1 << 17);

/// Shared parsed corpus for the conversion / query scaling benches:
/// 8 files' worth of records, parsed once.
class ConvertCorpus {
 public:
  static const ConvertCorpus& instance() {
    static ConvertCorpus corpus;
    return corpus;
  }

  std::vector<strace::TraceFileId> ids;
  std::vector<strace::ReadResult> parsed;
  std::int64_t total_records = 0;

  ConvertCorpus(const ConvertCorpus&) = delete;
  ConvertCorpus& operator=(const ConvertCorpus&) = delete;

 private:
  ConvertCorpus() {
    for (int f = 0; f < 8; ++f) {
      ids.push_back(strace::TraceFileId{"bench", "node" + std::to_string(f % 2 + 1),
                                        static_cast<std::uint64_t>(9000 + f)});
      parsed.push_back(strace::read_trace_text(make_mixed_trace(1 << 14)));
      total_records += static_cast<std::int64_t>(parsed.back().records.size());
    }
  }
};

/// Multi-thread scaling of the record -> Case conversion step of
/// event_log_from_files (convert_parallel_speedup in BENCH_parse.json:
/// best multi-worker items/s over the 1-worker point).
void BM_ConvertCasesParallel(benchmark::State& state) {
  const auto& corpus = ConvertCorpus::instance();
  const std::size_t n = corpus.parsed.size();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<model::Case> cases(n);
    std::vector<std::shared_ptr<strace::StringArena>> arenas(n);
    parallel_for(pool, 0, n, [&](std::size_t i) {
      auto arena = std::make_shared<strace::StringArena>();
      cases[i] = model::case_from_records(corpus.ids[i], corpus.parsed[i].records, *arena);
      arenas[i] = std::move(arena);
    });
    benchmark::DoNotOptimize(cases);
    benchmark::DoNotOptimize(arenas);
  }
  state.SetItemsProcessed(state.iterations() * corpus.total_records);
}
BENCHMARK(BM_ConvertCasesParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Process-lifetime EventLog over the ConvertCorpus, shared by the
/// query benchmarks (leaked deliberately: its arena backs the views).
const model::EventLog& query_bench_log() {
  static const model::EventLog* log = [] {
    const auto& corpus = ConvertCorpus::instance();
    auto* l = new model::EventLog();
    for (std::size_t i = 0; i < corpus.parsed.size(); ++i) {
      l->add_case(
          model::case_from_records(corpus.ids[i], corpus.parsed[i].records, l->arena()));
      l->adopt(corpus.parsed[i].buffer);
    }
    return l;
  }();
  return *log;
}

model::Query query_bench_query() {
  return model::Query().calls({"read", "write", "openat"}).fp_contains("/p");
}

/// Multi-thread scaling of Query::apply (query_parallel_speedup in
/// BENCH_parse.json). The query exercises both precompiled call-family
/// matching and path-substring filtering over every event.
void BM_QueryApplyParallel(benchmark::State& state) {
  const model::EventLog& log = query_bench_log();
  const auto q = query_bench_query();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.apply(log, pool));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_QueryApplyParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Serial apply() for reference (no pool in the loop).
void BM_QueryApplySerial(benchmark::State& state) {
  const model::EventLog& log = query_bench_log();
  const auto q = query_bench_query();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.apply(log));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_QueryApplySerial);

// ---- mixed per-file + intra-file parallelism ---------------------------

/// 1 big file + N small ones on disk — the workload where PR 1's
/// either/or parallelism (per-file XOR intra-file) leaves cores idle.
class MixedFileSet {
 public:
  static const MixedFileSet& instance() {
    static MixedFileSet set;
    return set;
  }

  [[nodiscard]] const std::vector<std::string>& paths() const { return paths_; }
  [[nodiscard]] std::int64_t total_bytes() const { return total_bytes_; }

  MixedFileSet(const MixedFileSet&) = delete;
  MixedFileSet& operator=(const MixedFileSet&) = delete;

 private:
  MixedFileSet() {
    dir_ = std::filesystem::temp_directory_path() /
           ("st_bench_mixed_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(dir_);
    const auto write = [&](const std::string& name, std::size_t lines) {
      const auto path = (dir_ / name).string();
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      const std::string text = make_mixed_trace(lines);
      out << text;
      paths_.push_back(path);
      total_bytes_ += static_cast<std::int64_t>(text.size());
    };
    write("big_node1_9000.st", 1 << 17);  // ~10 MB
    for (int i = 0; i < 8; ++i) {
      write("small_node1_" + std::to_string(9001 + i) + ".st", 1 << 12);
    }
  }

  ~MixedFileSet() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
  std::vector<std::string> paths_;
  std::int64_t total_bytes_ = 0;
};

/// PR 1 multi-file path: per-file parallelism only (each file parsed
/// sequentially on a pool worker).
void BM_MixedFiles_PerFileOnly(benchmark::State& state) {
  const auto& set = MixedFileSet::instance();
  ThreadPool pool(0);
  for (auto _ : state) {
    auto results = parallel_map(pool, set.paths(), [](const std::string& path) {
      return strace::read_trace_file(path);
    });
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(state.iterations() * set.total_bytes());
}
BENCHMARK(BM_MixedFiles_PerFileOnly)->UseRealTime();

/// PR 1 single-file path applied file by file: intra-file parallelism
/// only (files processed one after another).
void BM_MixedFiles_IntraFileOnly(benchmark::State& state) {
  const auto& set = MixedFileSet::instance();
  ThreadPool pool(0);
  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  opts.min_chunk_bytes = 1 << 18;
  for (auto _ : state) {
    std::vector<strace::ReadResult> results;
    results.reserve(set.paths().size());
    for (const auto& path : set.paths()) {
      results.push_back(strace::read_trace_file_parallel(path, opts));
    }
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(state.iterations() * set.total_bytes());
}
BENCHMARK(BM_MixedFiles_IntraFileOnly)->UseRealTime();

/// This PR: one work queue of (file, chunk) tasks across all files.
void BM_MixedFiles_Mixed(benchmark::State& state) {
  const auto& set = MixedFileSet::instance();
  ThreadPool pool(0);
  strace::ParallelReadOptions opts;
  opts.pool = &pool;
  opts.min_chunk_bytes = 1 << 18;
  for (auto _ : state) {
    auto results = strace::read_trace_files_mixed(set.paths(), opts);
    benchmark::DoNotOptimize(results);
  }
  state.SetBytesProcessed(state.iterations() * set.total_bytes());
}
BENCHMARK(BM_MixedFiles_Mixed)->UseRealTime();

/// End-to-end: files on disk -> EventLog (mmap + mixed parallel parse +
/// arena-interned event construction).
void BM_EventLogFromFilesMixed(benchmark::State& state) {
  const auto& set = MixedFileSet::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::event_log_from_files(set.paths()));
  }
  state.SetBytesProcessed(state.iterations() * set.total_bytes());
}
BENCHMARK(BM_EventLogFromFilesMixed)->UseRealTime();

void BM_WriteTrace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto parsed = strace::read_trace_text(make_trace_text(n, false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::format_trace(parsed.records));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WriteTrace)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
