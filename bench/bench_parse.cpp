// OVH-PARSE — strace parsing overhead (Sec. V "overheads").
//
// Measures line-level parse throughput, whole-trace reading with
// unfinished/resumed merging, and the trace-writer round trip. The
// read path should scale linearly in the line count.
#include <benchmark/benchmark.h>

#include "strace/parser.hpp"
#include "strace/reader.hpp"
#include "strace/writer.hpp"

namespace {

using namespace st;

const std::string kReadLine =
    "9054  08:55:54.153994 read(3</usr/lib/x86_64-linux-gnu/libselinux.so.1>, ..., 832) = "
    "832 <0.000203>";
const std::string kOpenatLine =
    "42  10:00:00.000000 openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
    "<0.000150>";

void BM_ParseLine_Read(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::parse_line(kReadLine));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseLine_Read);

void BM_ParseLine_Openat(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::parse_line(kOpenatLine));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseLine_Openat);

std::string make_trace_text(std::size_t lines, bool with_resume_pairs) {
  std::string text;
  text.reserve(lines * 100);
  for (std::size_t i = 0; i < lines; ++i) {
    const Micros t = static_cast<Micros>(i * 100);
    if (with_resume_pairs && i % 2 == 0) {
      text += "7  " + format_time_of_day(t) + " read(3</p/f>, <unfinished ...>\n";
    } else if (with_resume_pairs) {
      text += "7  " + format_time_of_day(t) + " <... read resumed> ..., 512) = 512 <0.000040>\n";
    } else {
      text += "7  " + format_time_of_day(t) + " read(3</p/f>, ..., 512) = 512 <0.000040>\n";
    }
  }
  return text;
}

/// O(n) whole-trace read; the n sweep verifies linear scaling.
void BM_ReadTraceText(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_trace_text(n, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::read_trace_text(text));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReadTraceText)->Range(1 << 8, 1 << 14)->Complexity(benchmark::oN);

void BM_ReadTraceText_WithResumeMerging(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::string text = make_trace_text(n, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::read_trace_text(text));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReadTraceText_WithResumeMerging)->Range(1 << 8, 1 << 14);

void BM_WriteTrace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto parsed = strace::read_trace_text(make_trace_text(n, false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(strace::format_trace(parsed.records));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WriteTrace)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
