// CPLX-REND — rendering is O(m^2) in the worst case (Sec. V step 5):
// a dense DFG has an edge between every pair of its m nodes.
#include <benchmark/benchmark.h>

#include "dfg/render.hpp"
#include "dfg/render_svg.hpp"

namespace {

using namespace st;

/// Fully dense DFG over m activities (every pair directly follows).
dfg::Dfg dense_dfg(std::size_t m) {
  dfg::Dfg g;
  std::vector<model::Activity> names;
  names.reserve(m);
  for (std::size_t i = 0; i < m; ++i) names.push_back("act" + std::to_string(i));
  // One trace visiting every ordered pair produces the dense graph.
  model::ActivityTrace trace;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      trace.push_back(names[i]);
      trace.push_back(names[j]);
    }
  }
  g.add_trace(trace);
  return g;
}

void BM_RenderDot_Dense(benchmark::State& state) {
  const auto g = dense_dfg(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::render_dot(g, nullptr, nullptr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RenderDot_Dense)->Range(4, 128)->Complexity(benchmark::oNSquared);

void BM_RenderAscii_Dense(benchmark::State& state) {
  const auto g = dense_dfg(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::render_ascii(g, nullptr, nullptr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RenderAscii_Dense)->Range(4, 128)->Complexity(benchmark::oNSquared);

/// Sparse (chain) graphs render linearly — the practical regime the
/// paper's "keep m small" guidance targets.
void BM_RenderDot_Chain(benchmark::State& state) {
  dfg::Dfg g;
  model::ActivityTrace trace;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    trace.push_back("act" + std::to_string(i));
  }
  g.add_trace(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::render_dot(g, nullptr, nullptr));
  }
}
BENCHMARK(BM_RenderDot_Chain)->Range(4, 1024);

void BM_RenderSvg_Dense(benchmark::State& state) {
  const auto g = dense_dfg(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::render_svg(g, nullptr, nullptr));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RenderSvg_Dense)->Range(4, 64)->Complexity(benchmark::oNSquared);

void BM_LayoutOnly(benchmark::State& state) {
  const auto g = dense_dfg(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dfg::layout_dfg(g, nullptr));
  }
}
BENCHMARK(BM_LayoutOnly)->Range(4, 64);

}  // namespace

BENCHMARK_MAIN();
