// OVH-PARSE (storage leg) — elog container write/read throughput plus
// the headline of the v2 format: "import once, analyze many times".
//
// The paper stores processed traces in one HDF5 file; elog is our
// stand-in. The BM_OpenFirstQuery* trio measures the interactive
// workflow cost — open a stored corpus and answer one query — three
// ways over the SAME trace data:
//
//   V2       mmap the columnar container, footer/table/directory only,
//            materialize just the queried case (zero-parse open);
//   V1       stream-parse the chunk container front to back;
//   Reparse  no container at all: re-ingest the raw strace text.
//
// run_bench.sh turns these into BENCH_elog.json's
// open_speedup_v2_vs_v1 / open_speedup_v2_vs_reparse.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "elog/store.hpp"
#include "elog/v2_store.hpp"
#include "model/from_strace.hpp"
#include "support/timeparse.hpp"
#include "testdata.hpp"

namespace {

using namespace st;
namespace fs = std::filesystem;

std::string make_clean_trace(std::size_t lines, std::uint64_t pid) {
  std::string text;
  Micros t = 36000000000;  // 10:00:00
  const std::string p = std::to_string(pid);
  for (std::size_t i = 0; i < lines; ++i) {
    t += 100;
    switch (i % 4) {
      case 0:
        text += p + "  " + format_time_of_day(t) +
                " read(3</p/data/f>, \"\"..., 512) = 512 <0.000040>\n";
        break;
      case 1:
        text += p + "  " + format_time_of_day(t) +
                " openat(AT_FDCWD, \"/p/scratch/ssf/test\", O_RDWR|O_CREAT, 0644) = 5 "
                "<0.000150>\n";
        break;
      case 2:
        text += p + "  " + format_time_of_day(t) +
                " pwrite64(5</p/scratch/ssf/test>, \"\"..., 1048576, 33554432) = 1048576 "
                "<0.000294>\n";
        break;
      default:
        text += p + "  " + format_time_of_day(t) +
                " close(5</p/scratch/ssf/test>) = 0 <0.000010>\n";
        break;
    }
  }
  return text;
}

/// One imported corpus, generated once per benchmark process: raw
/// strace text files plus the same events stored as elog v1 and v2.
struct ElogCorpus {
  std::vector<std::string> trace_paths;
  std::string v1_path;
  std::string v2_path;
};

const ElogCorpus& corpus() {
  static const ElogCorpus c = [] {
    ElogCorpus out;
    const fs::path dir = fs::temp_directory_path() / "st_bench_elog_corpus";
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (int i = 0; i < 12; ++i) {
      const fs::path p =
          dir / ("job" + std::to_string(i) + "_node" + std::to_string(i % 3) + "_" +
                 std::to_string(9000 + i) + ".st");
      std::ofstream f(p, std::ios::binary | std::ios::trunc);
      f << make_clean_trace(1500 + static_cast<std::size_t>(i) * 100,
                            static_cast<std::uint64_t>(40 + i));
      out.trace_paths.push_back(p.string());
    }
    const auto log = model::event_log_from_files(out.trace_paths);
    out.v1_path = (dir / "corpus_v1.elog").string();
    out.v2_path = (dir / "corpus_v2.elog").string();
    elog::write_event_log_file(out.v1_path, log);
    elog::write_event_log_v2_file(out.v2_path, log);
    return out;
  }();
  return c;
}

std::int64_t first_case_query(const model::Case& c) {
  std::int64_t io_time = 0;
  for (const auto& e : c.events()) io_time += e.dur;
  return io_time;
}

// ---- open and first query: the "analyze many times" loop --------------

void BM_OpenFirstQueryV2(benchmark::State& state) {
  const auto& cor = corpus();
  for (auto _ : state) {
    const auto mapped = elog::open_v2(cor.v2_path);
    benchmark::DoNotOptimize(first_case_query(mapped->case_at(0)));
    benchmark::DoNotOptimize(mapped->total_events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenFirstQueryV2)->Unit(benchmark::kMicrosecond);

void BM_OpenFirstQueryV1(benchmark::State& state) {
  const auto& cor = corpus();
  for (auto _ : state) {
    const auto log = elog::read_event_log_file(cor.v1_path);
    benchmark::DoNotOptimize(first_case_query(log.cases()[0]));
    benchmark::DoNotOptimize(log.total_events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenFirstQueryV1)->Unit(benchmark::kMicrosecond);

void BM_OpenFirstQueryReparse(benchmark::State& state) {
  const auto& cor = corpus();
  for (auto _ : state) {
    const auto log = model::event_log_from_files(cor.trace_paths);
    benchmark::DoNotOptimize(first_case_query(log.cases()[0]));
    benchmark::DoNotOptimize(log.total_events());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenFirstQueryReparse)->Unit(benchmark::kMicrosecond);

// ---- full (de)serialization throughput, both container versions --------

void BM_ElogWrite(benchmark::State& state) {
  const auto log = bench::synthetic_log(6, 32, static_cast<std::size_t>(state.range(0)) / 32, 16);
  for (auto _ : state) {
    std::ostringstream out;
    elog::write_event_log(out, log);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_ElogWrite)->Range(1 << 10, 1 << 16);

void BM_ElogWriteV2(benchmark::State& state) {
  const auto log = bench::synthetic_log(6, 32, static_cast<std::size_t>(state.range(0)) / 32, 16);
  for (auto _ : state) {
    std::ostringstream out;
    elog::write_event_log_v2(out, log);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_ElogWriteV2)->Range(1 << 10, 1 << 16);

void BM_ElogRead(benchmark::State& state) {
  const auto log = bench::synthetic_log(7, 32, static_cast<std::size_t>(state.range(0)) / 32, 16);
  std::ostringstream out;
  elog::write_event_log(out, log);
  const std::string data = out.str();
  for (auto _ : state) {
    std::istringstream in(data);
    benchmark::DoNotOptimize(elog::read_event_log(in));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ElogRead)->Range(1 << 10, 1 << 16);

void BM_ElogReadV2(benchmark::State& state) {
  // Full materialization of every case (the worst case for v2; the
  // open-and-first-query trio above shows the lazy win).
  const auto log = bench::synthetic_log(7, 32, static_cast<std::size_t>(state.range(0)) / 32, 16);
  std::ostringstream out;
  elog::write_event_log_v2(out, log);
  const std::string data = out.str();
  for (auto _ : state) {
    auto buffer = std::make_shared<strace::TraceBuffer>(data);
    benchmark::DoNotOptimize(elog::read_event_log_v2(elog::MappedElog::from_buffer(buffer)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ElogReadV2)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
