// OVH-PARSE (storage leg) — elog container write/read throughput.
//
// The paper stores processed traces in one HDF5 file; elog is our
// stand-in. Events/second here bound how fast stored logs can be
// (de)serialized relative to reparsing raw strace text.
#include <benchmark/benchmark.h>

#include <sstream>

#include "elog/store.hpp"
#include "testdata.hpp"

namespace {

using namespace st;

void BM_ElogWrite(benchmark::State& state) {
  const auto log = bench::synthetic_log(6, 32, static_cast<std::size_t>(state.range(0)) / 32, 16);
  for (auto _ : state) {
    std::ostringstream out;
    elog::write_event_log(out, log);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
}
BENCHMARK(BM_ElogWrite)->Range(1 << 10, 1 << 16);

void BM_ElogRead(benchmark::State& state) {
  const auto log = bench::synthetic_log(7, 32, static_cast<std::size_t>(state.range(0)) / 32, 16);
  std::ostringstream out;
  elog::write_event_log(out, log);
  const std::string data = out.str();
  for (auto _ : state) {
    std::istringstream in(data);
    benchmark::DoNotOptimize(elog::read_event_log(in));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(log.total_events()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ElogRead)->Range(1 << 10, 1 << 16);

}  // namespace

BENCHMARK_MAIN();
