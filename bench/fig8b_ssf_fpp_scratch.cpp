// FIG8b — DFG synthesis restricted to events under $SCRATCH.
//
// Same event log as Fig. 8a, but the mapping keeps one extra path
// level below the site root so the SSF run ($SCRATCH/ssf) and the FPP
// run ($SCRATCH/fpp) become distinct activities. The figure's claim:
// openat/write on $SCRATCH/ssf have significantly higher relative
// duration than on $SCRATCH/fpp — file-locking contention quantified.
#include <iostream>

#include "dfg/builder.hpp"
#include "dfg/render.hpp"
#include "iosim/campaign.hpp"

int main(int argc, char** argv) {
  using namespace st;
  iosim::CampaignScale scale;
  if (argc > 1) scale.num_ranks = std::atoi(argv[1]);

  const auto log = iosim::ssf_fpp_campaign(scale);
  const auto f =
      model::Mapping::call_site(model::SitePathMap::juwels_like(), 1).filtered_fp("/p/scratch");
  const auto g = dfg::build_serial(log, f);
  const auto stats = dfg::IoStatistics::compute(log, f);
  const dfg::StatisticsColoring blue(stats);

  std::cout << "=== Fig. 8b: G over $SCRATCH events only ===\n"
            << dfg::render_ascii(g, &stats, &blue) << "\n";

  const auto* o_ssf = stats.find("openat\n$SCRATCH/ssf");
  const auto* o_fpp = stats.find("openat\n$SCRATCH/fpp");
  const auto* w_ssf = stats.find("write\n$SCRATCH/ssf");
  const auto* w_fpp = stats.find("write\n$SCRATCH/fpp");
  std::cout << "paper:    Load(openat ssf)=0.54  Load(write ssf)=0.43  Load(fpp)<=0.01\n";
  std::cout << "measured: Load(openat ssf)=" << (o_ssf ? o_ssf->rel_dur : 0)
            << "  Load(write ssf)=" << (w_ssf ? w_ssf->rel_dur : 0)
            << "  Load(openat fpp)=" << (o_fpp ? o_fpp->rel_dur : 0)
            << "  Load(write fpp)=" << (w_fpp ? w_fpp->rel_dur : 0) << "\n";
  return 0;
}
