// FIG1 — the tracing setup: strace command lines for ls / ls -l on
// three MPI processes, and the resulting trace-file names under the
// cid_host_rid.st convention.
#include <iostream>

#include "iosim/commands.hpp"
#include "strace/filename.hpp"

int main() {
  using namespace st;
  std::cout << "=== Fig. 1: tracing ls and ls -l with strace ===\n";
  std::cout << "srun -n 3 strace -o a_$(hostname)_$$.st \\\n"
               "     -f -e read,write -tt -T -y ls\n";
  std::cout << "srun -n 3 strace -o b_$(hostname)_$$.st \\\n"
               "     -f -e read,write -tt -T -y ls -l\n\n";

  std::cout << "generated trace files:\n";
  for (const auto& trace : iosim::make_ls_traces().traces) {
    std::cout << "  " << strace::format_trace_filename(trace.id) << "  ("
              << trace.records.size() << " records)\n";
  }
  for (const auto& trace : iosim::make_ls_l_traces().traces) {
    std::cout << "  " << strace::format_trace_filename(trace.id) << "  ("
              << trace.records.size() << " records)\n";
  }

  std::cout << "\nfile-name convention check (cid / host / rid parsed back):\n";
  for (const char* name : {"a_host1_9042.st", "b_host1_9157.st"}) {
    const auto id = strace::parse_trace_filename(name);
    std::cout << "  " << name << " -> cid=" << id->cid << " host=" << id->host
              << " rid=" << id->rid << "\n";
  }
  return 0;
}
